"""Property tests for the cuckoo filter's membership contract.

The F-Barre correctness argument leans on one asymmetry: LCF/RCF lookups
may false-*positive* (cost: a wasted probe) but must never false-
*negative* for a resident key (cost: a missed coalescing opportunity the
validation subsystem treats as a structural bug).  These tests drive the
filter through randomized insert/delete/lookup interleavings against an
exact shadow multiset and assert that contract, plus a bounded empirical
false-positive rate.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import CuckooConfig
from repro.filters import CuckooFilter

KEY = st.integers(min_value=0, max_value=(1 << 40) - 1)

#: (op, key) programs: op 0 = insert, 1 = delete, 2 = lookup.  Keys are
#: drawn from a small pool so deletes and lookups actually collide with
#: earlier inserts.
OPS = st.lists(st.tuples(st.integers(min_value=0, max_value=2),
                         st.integers(min_value=0, max_value=63)),
               min_size=1, max_size=300)


def roomy_filter() -> CuckooFilter:
    return CuckooFilter(CuckooConfig(rows=128, ways=4, fingerprint_bits=12))


@settings(max_examples=60, deadline=None)
@given(ops=OPS, salt=KEY)
def test_property_no_false_negative_for_resident_keys(ops, salt):
    """Whatever the op interleaving, accepted-and-not-deleted keys hit."""
    f = roomy_filter()
    resident: Counter[int] = Counter()
    for op, small_key in ops:
        key = small_key ^ salt
        if op == 0:
            if f.insert(key):
                resident[key] += 1
        elif op == 1 and resident[key] > 0:
            assert f.delete(key)
            resident[key] -= 1
        else:
            if resident[key] > 0:
                assert f.contains(key)
    for key, count in resident.items():
        if count > 0:
            assert f.contains(key)


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_property_size_tracks_successful_operations(ops):
    f = roomy_filter()
    expected = 0
    for op, key in ops:
        if op == 0:
            expected += f.insert(key)
        elif op == 1:
            expected -= f.delete(key)
        assert len(f) == expected
    assert 0 <= len(f) <= f.config.capacity


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(KEY, min_size=1, max_size=150, unique=True))
def test_property_deleting_everything_empties_the_filter(keys):
    f = roomy_filter()
    accepted = [k for k in keys if f.insert(k)]
    for key in accepted:
        assert f.delete(key)
    assert len(f) == 0
    assert not any(f.contains(k) for k in accepted)


def test_failed_insert_leaves_filter_unchanged():
    """Kick-chain exhaustion must unwind: no resident victim is dropped.

    A tiny table with a long kick budget forces real kick chains; every
    failed insert must leave bucket contents exactly as they were (this
    is what upgrades no-false-negative from probable to guaranteed).
    """
    f = CuckooFilter(CuckooConfig(rows=4, ways=2, fingerprint_bits=6,
                                  max_kicks=16))
    # Disable the saturation bail-out so every failure exercises a real
    # exhausted kick chain (the path that must unwind).
    f._kick_ceiling = f.config.capacity + 1
    rng = np.random.default_rng(3)
    resident = []
    saw_failure = False
    for raw in rng.integers(0, 1 << 40, size=200):
        key = int(raw)
        before = [list(b) for b in f._buckets]
        if f.insert(key):
            resident.append(key)
        else:
            saw_failure = True
            assert [list(b) for b in f._buckets] == before
        for r in resident:
            assert f.contains(r)
    assert saw_failure  # the test must actually exercise the undo path


def test_empirical_false_positive_rate_is_bounded():
    """FP rate stays within a small multiple of 2b/2^f at ~70% load."""
    config = CuckooConfig(rows=256, ways=4, fingerprint_bits=10)
    f = CuckooFilter(config)
    rng = np.random.default_rng(17)
    members = set()
    for raw in rng.integers(0, 1 << 39, size=int(config.capacity * 0.7)):
        if f.insert(int(raw)):
            members.add(int(raw))
    probes = [int(v) for v in rng.integers(1 << 39, 1 << 40, size=30000)]
    fp = sum(f.contains(p) for p in probes) / len(probes)
    assert fp <= 3 * f.theoretical_false_positive_rate() + 0.005


@pytest.mark.parametrize("ways", [1, 2, 4])
def test_saturation_is_graceful_across_geometries(ways):
    f = CuckooFilter(CuckooConfig(rows=8, ways=ways, fingerprint_bits=8,
                                  max_kicks=32))
    accepted = []
    for key in range(10 * f.config.capacity):
        before = len(f)
        if f.insert(key):
            accepted.append(key)
            assert len(f) == before + 1
        else:
            assert len(f) == before
    assert len(accepted) == len(f) <= f.config.capacity
    for key in accepted:
        assert f.contains(key)
