"""Summary-report generator tests."""

from repro.experiments.summary import REPORT_ORDER, build_summary, write_summary


def test_build_summary_includes_existing_sections(tmp_path):
    (tmp_path / "fig15.txt").write_text("fig15 body\n")
    (tmp_path / "table1.txt").write_text("table1 body\n")
    text = build_summary(tmp_path)
    assert "fig15 body" in text
    assert "table1 body" in text
    assert "Fig 15" in text


def test_build_summary_lists_missing(tmp_path):
    text = build_summary(tmp_path)
    assert "Not yet generated" in text
    assert "fig15" in text


def test_write_summary_creates_file(tmp_path):
    (tmp_path / "fig01.txt").write_text("x\n")
    path = write_summary(tmp_path)
    assert path.exists()
    assert "Fig 1" in path.read_text()


def test_report_order_covers_all_bench_outputs():
    names = {name for name, _title in REPORT_ORDER}
    # Every bench writes one of these names (see benchmarks/).
    expected = {"table1", "overhead_area", "ext_ondemand",
                "ablation_pw_queue", "ablation_pec_buffer",
                "ablation_stream_window"}
    expected |= {f"fig{n:02d}" for n in
                 (1, 2, 4, 5, 6, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24,
                  25, 26)}
    expected |= {"fig27a", "fig27b"}
    assert names == expected
