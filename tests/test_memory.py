"""Memory fabric and migration engine tests."""

from repro.common import EventQueue, LinkConfig, MemoryMap, MappingKind
from repro.common.config import MigrationConfig
from repro.gpu.memory import MemoryFabric
from repro.mapping import (
    AllocationRequest,
    FrameAllocatorGroup,
    GpuDriver,
    make_policy,
)
from repro.memsim import AddressSpaceRegistry, Mesh
from repro.migration import MigrationEngine


def make_fabric(dram=100, mesh_latency=32):
    q = EventQueue()
    mm = MemoryMap(num_chiplets=4, frames_per_chiplet=1000)
    mesh = Mesh(q, LinkConfig(latency=mesh_latency, cycles_per_packet=1), 4)
    return q, MemoryFabric(q, mm, mesh, dram_latency=dram)


def test_local_access_costs_dram_only():
    q, fabric = make_fabric()
    times = []
    fabric.access(0, 5, lambda: times.append(q.now))
    q.run()
    assert times == [100]
    assert fabric.stats.count("local_accesses") == 1


def test_remote_access_adds_mesh_round_trip():
    q, fabric = make_fabric()
    times = []
    fabric.access(0, 2500, lambda: times.append(q.now))  # chiplet 2's frame
    q.run()
    assert times == [100 + 2 * 32]
    assert fabric.stats.count("remote_accesses") == 1
    assert fabric.remote_fraction() == 1.0


def test_owner_of_uses_frame_windows():
    _q, fabric = make_fabric()
    assert fabric.owner_of(0) == 0
    assert fabric.owner_of(999) == 0
    assert fabric.owner_of(1000) == 1
    assert fabric.owner_of(3999) == 3


def test_on_access_hook_fires():
    q, fabric = make_fabric()
    seen = []
    fabric.on_access = lambda accessor, owner, pfn: seen.append(
        (accessor, owner, pfn))
    fabric.access(1, 2500, lambda: None)
    q.run()
    assert seen == [(1, 2, 2500)]


class FakeChiplet:
    def __init__(self):
        self.invalidated = []

    def invalidate(self, pasid, vpn):
        self.invalidated.append((pasid, vpn))


class TestMigrationEngine:
    def make(self, threshold=3):
        q = EventQueue()
        mm = MemoryMap(num_chiplets=2, frames_per_chiplet=64)
        allocators = FrameAllocatorGroup(2, 64)
        spaces = AddressSpaceRegistry()
        driver = GpuDriver(mm, allocators, spaces,
                           make_policy(MappingKind.LASP, 2),
                           barre_enabled=True)
        rec = driver.malloc(AllocationRequest(data_id=1, pages=2, row_pages=1))
        mesh = Mesh(q, LinkConfig(latency=10, cycles_per_packet=1), 2)
        chiplets = [FakeChiplet(), FakeChiplet()]
        engine = MigrationEngine(q, MigrationConfig(enabled=True,
                                                    threshold=threshold,
                                                    page_copy_latency=100),
                                 driver, chiplets, mesh)
        return q, driver, engine, chiplets, rec

    def test_threshold_triggers_migration(self):
        _q, driver, engine, chiplets, rec = self.make(threshold=3)
        vpn = rec.start_vpn  # lives on chiplet 0
        for _ in range(3):
            engine.note_access(accessor=1, owner=0, pasid=0, vpn=vpn)
        assert engine.migrations == 1
        assert driver.chiplet_of(0, vpn) == 1
        # All group members' entries were shot down in every chiplet.
        assert len(chiplets[0].invalidated) == 2

    def test_below_threshold_no_migration(self):
        _q, _driver, engine, _chiplets, rec = self.make(threshold=5)
        for _ in range(4):
            engine.note_access(1, 0, 0, rec.start_vpn)
        assert engine.migrations == 0

    def test_local_accesses_do_not_count(self):
        _q, _driver, engine, _chiplets, rec = self.make(threshold=1)
        engine.note_access(0, 0, 0, rec.start_vpn)
        assert engine.migrations == 0

    def test_disabled_engine_ignores_everything(self):
        q, driver, _engine, chiplets, rec = self.make()
        mesh = Mesh(q, LinkConfig(latency=10), 2)
        engine = MigrationEngine(q, MigrationConfig(enabled=False),
                                 driver, chiplets, mesh)
        for _ in range(50):
            engine.note_access(1, 0, 0, rec.start_vpn)
        assert engine.migrations == 0

    def test_counters_reset_after_migration(self):
        _q, _driver, engine, _chiplets, rec = self.make(threshold=2)
        vpn = rec.start_vpn
        for _ in range(2):
            engine.note_access(1, 0, 0, vpn)
        assert engine.migrations == 1
        # Back on chiplet 1 now; accesses from 0 must count afresh.
        engine.note_access(0, 1, 0, vpn)
        assert engine.migrations == 1

    def test_copy_occupies_mesh_link(self):
        q, _driver, engine, _chiplets, rec = self.make(threshold=1)
        engine.note_access(1, 0, 0, rec.start_vpn)
        times = []
        engine.mesh.send(0, 1, None, lambda _p: times.append(q.now))
        q.run()
        assert times[0] >= 100  # queued behind the page copy
