"""Chiplet translation-pipeline tests with a scripted miss handler."""

from repro.common import EventQueue, SimConfig
from repro.core.translation import MissHandler
from repro.gpu.chiplet import Chiplet
from repro.memsim import MshrFile, Tlb, TlbEntry


class ScriptedHandler(MissHandler):
    """Resolves after a fixed latency; records every request."""

    def __init__(self, queue, latency=500):
        self.queue = queue
        self.latency = latency
        self.requests = []

    def resolve(self, pasid, vpn, done):
        self.requests.append((pasid, vpn))
        entry = TlbEntry(pasid=pasid, vpn=vpn, global_pfn=vpn + 1)
        self.queue.schedule(self.latency, lambda: done(entry))


def make_chiplet(valkyrie=False, streams=2):
    queue = EventQueue()
    config = SimConfig(streams_per_chiplet=streams,
                       backend=SimConfig().backend)
    l2 = Tlb(config.l2_tlb, name="l2")
    l2_mshr = MshrFile(config.l2_tlb.mshrs)
    handler = ScriptedHandler(queue)
    chiplet = Chiplet(queue, 0, config, l2, l2_mshr, handler,
                      valkyrie_l1_probing=valkyrie)
    return queue, chiplet, handler


def test_l1_hit_costs_one_cycle():
    queue, chiplet, handler = make_chiplet()
    done = []
    chiplet.translate(0, 0, 5, lambda e: done.append(queue.now))
    queue.run()
    first_time = queue.now
    chiplet.translate(0, 0, 5, lambda e: done.append(queue.now))
    queue.run()
    assert done[1] - first_time == 1  # L1 hit after the fill
    assert len(handler.requests) == 1


def test_l2_hit_skips_backend():
    queue, chiplet, handler = make_chiplet(streams=2)
    chiplet.translate(0, 0, 5, lambda e: None)
    queue.run()
    start = queue.now
    # Stream 1's L1 is cold, but the shared L2 now holds the entry.
    chiplet.translate(1, 0, 5, lambda e: None)
    queue.run()
    assert len(handler.requests) == 1
    assert queue.now - start == 1 + 10  # L1 miss + L2 lookup


def test_l1_mshr_merges_same_stream_requests():
    queue, chiplet, handler = make_chiplet()
    done = []
    chiplet.translate(0, 0, 5, lambda e: done.append("a"))
    chiplet.translate(0, 0, 5, lambda e: done.append("b"))
    queue.run()
    assert sorted(done) == ["a", "b"]
    assert len(handler.requests) == 1


def test_l2_mshr_merges_cross_stream_requests():
    queue, chiplet, handler = make_chiplet(streams=2)
    done = []
    chiplet.translate(0, 0, 5, lambda e: done.append(0))
    chiplet.translate(1, 0, 5, lambda e: done.append(1))
    queue.run()
    assert sorted(done) == [0, 1]
    assert len(handler.requests) == 1


def test_valkyrie_probes_sibling_l1():
    queue, chiplet, handler = make_chiplet(valkyrie=True, streams=2)
    chiplet.translate(0, 0, 5, lambda e: None)
    queue.run()
    start = queue.now
    chiplet.translate(1, 0, 5, lambda e: None)
    queue.run()
    # Served by stream 0's L1 via probing: no new backend request.
    assert len(handler.requests) == 1
    assert chiplet.stats.count("valkyrie_l1_hits") == 1
    assert queue.now - start < 10  # cheaper than the L2 path


def test_prefetch_fill_respects_pending_misses():
    queue, chiplet, handler = make_chiplet()
    chiplet.translate(0, 0, 7, lambda e: None)  # miss in flight
    queue.run(until=20)  # past L1+L2 lookup: the L2 MSHR is allocated
    entry = TlbEntry(pasid=0, vpn=7, global_pfn=99)
    chiplet.fill_l2_prefetch(entry)  # must not race the demand fill
    assert chiplet.l2.probe(0, 7) is None
    queue.run()
    chiplet.fill_l2_prefetch(TlbEntry(pasid=0, vpn=8, global_pfn=100))
    assert chiplet.l2.probe(0, 8) is not None
    assert chiplet.stats.count("prefetch_fills") == 1


def test_invalidate_clears_l1_and_l2():
    queue, chiplet, handler = make_chiplet()
    chiplet.translate(0, 0, 5, lambda e: None)
    queue.run()
    chiplet.invalidate(0, 5)
    assert chiplet.l2.probe(0, 5) is None
    assert chiplet.l1s[0].probe(0, 5) is None


def test_shootdown_flushes_everything():
    queue, chiplet, handler = make_chiplet()
    for vpn in range(4):
        chiplet.translate(0, 0, vpn, lambda e: None)
    queue.run()
    chiplet.shootdown()
    assert chiplet.l2.occupancy() == 0
    assert all(l1.occupancy() == 0 for l1 in chiplet.l1s)
