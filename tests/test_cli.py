"""CLI tests (run through main() with a tiny scale)."""

import pytest

from repro.cli import FIGURES, SCHEMES, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gemv" in out and "fbarre" in out and "fig15" in out


def test_run_command(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["run", "gemv", "--scheme", "barre", "--scale", "0.05",
                 "--baseline"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out and "speedup vs baseline" in out


def test_figure_command_area(capsys):
    assert main(["figure", "area"]) == 0
    out = capsys.readouterr().out
    assert "overhead_vs_l2" in out


def test_trace_command(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    out_path = tmp_path / "trace.jsonl"
    assert main(["trace", "--app", "gemv", "--scheme", "fbarre",
                 "--scale", "0.05", "--format", "jsonl",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "phase" in out and "total" in out and "spans ->" in out
    assert out_path.exists() and out_path.stat().st_size > 0
    # The traced run warms the point's standard cache slot.
    assert "result cached at" in out


def test_trace_summary_format_writes_breakdown(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    out_path = tmp_path / "breakdown.txt"
    assert main(["trace", "--app", "gemv", "--scale", "0.05",
                 "--format", "summary", "--out", str(out_path)]) == 0
    text = out_path.read_text()
    assert "phase" in text and "cycles" in text and "total" in text


def test_run_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "nosuchapp"])


def test_validate_command_clean(capsys):
    assert main(["validate", "--schemes", "ats,barre", "--seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "no divergences, no invariant violations" in out
    assert "accesses checked" in out


def test_validate_command_detects_injected_bug(capsys):
    assert main(["validate", "--schemes", "barre", "--seeds", "1",
                 "--inject-pec-bug", "1"]) == 1
    out = capsys.readouterr().out
    assert "INVARIANT VIOLATION" in out and "page table says" in out


def test_validate_command_reports_divergence_without_checker(capsys):
    assert main(["validate", "--schemes", "barre", "--seeds", "1",
                 "--no-invariants", "--inject-pec-bug", "1"]) == 1
    out = capsys.readouterr().out
    assert "DIVERGENCE" in out and "expected" in out


def test_validate_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        main(["validate", "--schemes", "nosuchscheme"])


def test_all_figures_registered():
    # 18 paper figures (fig27 split a/b) + table1 + area + the on-demand
    # and multi-tenant-churn extensions + 3 ablations.
    assert len(FIGURES) == 26
    assert len(SCHEMES) == 7
