"""Statistics utilities tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Histogram, LatencyHistogram, StatSet, geomean


class TestStatSet:
    def test_bump_and_count(self):
        s = StatSet("x")
        s.bump("hits")
        s.bump("hits", 4)
        assert s.count("hits") == 5
        assert s.count("never") == 0

    def test_observe_and_mean(self):
        s = StatSet("x")
        for v in (10, 20, 30):
            s.observe("lat", v)
        assert s.mean("lat") == 20
        assert s.samples("lat") == 3
        assert s.mean("none") == 0.0

    def test_ratio(self):
        s = StatSet("x")
        s.bump("a", 3)
        s.bump("b", 6)
        assert s.ratio("a", "b") == 0.5
        assert s.ratio("a", "zero") == 0.0

    def test_as_dict(self):
        s = StatSet("x")
        s.bump("c")
        s.observe("m", 2.0)
        d = s.as_dict()
        assert d["c"] == 1
        assert d["m_mean"] == 2.0
        assert d["m_samples"] == 1

    def test_as_dict_rejects_derived_key_collision(self):
        # A counter literally named "lat_mean" would silently shadow the
        # mean derived from observe("lat", ...); that must be an error.
        s = StatSet("x")
        s.bump("lat_mean")
        s.observe("lat", 7.0)
        with pytest.raises(ValueError, match="lat_mean"):
            s.as_dict()

    def test_as_dict_samples_collision_also_rejected(self):
        s = StatSet("x")
        s.bump("lat_samples")
        s.observe("lat", 7.0)
        with pytest.raises(ValueError, match="lat_samples"):
            s.as_dict()


class TestHistogram:
    def test_fractions(self):
        h = Histogram()
        for v in (1, 1, 2, 5):
            h.add(v)
        assert h.total() == 4
        assert h.fraction_at(1) == 0.5
        assert h.fraction_in([1, 2]) == 0.75
        assert h.fraction_in([99]) == 0.0

    def test_quantile(self):
        h = Histogram()
        for v in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
            h.add(v)
        assert h.quantile(0.5) == 5
        assert h.quantile(1.0) == 10

    def test_empty(self):
        h = Histogram()
        assert h.total() == 0
        assert h.fraction_at(1) == 0.0
        assert h.quantile(0.5) == 0


class TestLatencyHistogram:
    def test_log2_buckets(self):
        h = LatencyHistogram()
        for v in (0, 1, 2, 3, 4, 100):
            h.add(v)
        # bit_length: 0->0, 1->1, {2,3}->2, 4->3, 100->7
        assert dict(h.buckets) == {0: 1, 1: 1, 2: 2, 3: 1, 7: 1}
        assert h.total() == 6
        assert h.sum == 110
        assert h.max == 100
        assert h.mean() == pytest.approx(110 / 6)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyHistogram().add(-1)

    def test_percentiles_are_bucket_upper_bounds(self):
        h = LatencyHistogram()
        for v in range(1, 101):
            h.add(v)
        # p50 of 1..100 lands in bucket 6 ([32, 63]); bound is 63.
        assert h.p50 == 63
        assert h.p90 == 100  # bucket 7 bound 127, clamped to max
        assert h.percentile(1.0) == 100

    def test_empty(self):
        h = LatencyHistogram()
        assert h.total() == 0
        assert h.mean() == 0.0
        assert h.p50 == 0 and h.p99 == 0

    def test_merge_order_independent(self):
        parts = []
        for base in (0, 1, 2):
            h = LatencyHistogram()
            for v in range(base, 30, 3):
                h.add(v)
            parts.append(h)
        forward, backward = LatencyHistogram(), LatencyHistogram()
        for p in parts:
            forward.merge(p)
        for p in reversed(parts):
            backward.merge(p)
        serial = LatencyHistogram()
        for v in range(30):
            serial.add(v)
        assert forward == backward == serial

    def test_dict_round_trip(self):
        h = LatencyHistogram()
        for v in (0, 5, 1000):
            h.add(v)
        again = LatencyHistogram.from_dict(h.as_dict())
        assert again == h
        assert LatencyHistogram.from_dict(None) == LatencyHistogram()

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**6)))
    def test_property_percentiles_bounded(self, values):
        h = LatencyHistogram()
        for v in values:
            h.add(v)
        assert 0 <= h.p50 <= h.p90 <= h.p99 <= (h.max if values else 0)

    def test_empty_percentile_any_quantile_is_zero(self):
        h = LatencyHistogram()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 0

    def test_single_bucket_percentiles_clamp_to_observed_max(self):
        # All samples in one bucket ([32, 63]): every percentile is the
        # bucket bound clamped to the true max, and the mean is exact.
        h = LatencyHistogram()
        for v in (33, 40, 45):
            h.add(v)
        assert h.buckets == {6: 3}
        assert h.p50 == h.p90 == h.p99 == 45
        assert h.mean() == pytest.approx((33 + 40 + 45) / 3)

    def test_overflow_bucket_huge_values(self):
        # Values far past any latency the simulator produces still land
        # in a well-defined log2 bucket, and the sum/max stay exact.
        h = LatencyHistogram()
        big = 10**12
        h.add(0)
        h.add(big)
        assert h.buckets == {0: 1, big.bit_length(): 1}
        assert h.max == big and h.sum == big
        assert h.p99 == big     # bound (2**40 - 1) clamped to the max

    def test_merge_differently_shaped_histograms(self):
        # Disjoint bucket sets: merge must union them, not align them.
        low, high = LatencyHistogram(), LatencyHistogram()
        for v in (0, 1, 2, 3):
            low.add(v)
        for v in (10_000, 20_000):
            high.add(v)
        low.merge(high)
        assert low.total() == 6
        assert low.sum == 0 + 1 + 2 + 3 + 10_000 + 20_000
        assert low.max == 20_000
        assert low.p50 == 3          # still dominated by the low samples
        assert low.p99 == 20_000
        # Merging an empty histogram is the identity.
        before = low.as_dict()
        low.merge(LatencyHistogram())
        assert low.as_dict() == before


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([3]) == pytest.approx(3.0)
        assert geomean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1,
                    max_size=20))
    def test_property_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
