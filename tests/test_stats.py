"""Statistics utilities tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Histogram, StatSet, geomean


class TestStatSet:
    def test_bump_and_count(self):
        s = StatSet("x")
        s.bump("hits")
        s.bump("hits", 4)
        assert s.count("hits") == 5
        assert s.count("never") == 0

    def test_observe_and_mean(self):
        s = StatSet("x")
        for v in (10, 20, 30):
            s.observe("lat", v)
        assert s.mean("lat") == 20
        assert s.samples("lat") == 3
        assert s.mean("none") == 0.0

    def test_ratio(self):
        s = StatSet("x")
        s.bump("a", 3)
        s.bump("b", 6)
        assert s.ratio("a", "b") == 0.5
        assert s.ratio("a", "zero") == 0.0

    def test_as_dict(self):
        s = StatSet("x")
        s.bump("c")
        s.observe("m", 2.0)
        d = s.as_dict()
        assert d["c"] == 1
        assert d["m_mean"] == 2.0
        assert d["m_samples"] == 1


class TestHistogram:
    def test_fractions(self):
        h = Histogram()
        for v in (1, 1, 2, 5):
            h.add(v)
        assert h.total() == 4
        assert h.fraction_at(1) == 0.5
        assert h.fraction_in([1, 2]) == 0.75
        assert h.fraction_in([99]) == 0.0

    def test_quantile(self):
        h = Histogram()
        for v in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
            h.add(v)
        assert h.quantile(0.5) == 5
        assert h.quantile(1.0) == 10

    def test_empty(self):
        h = Histogram()
        assert h.total() == 0
        assert h.fraction_at(1) == 0.0
        assert h.quantile(0.5) == 0


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([3]) == pytest.approx(3.0)
        assert geomean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1,
                    max_size=20))
    def test_property_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
