"""Workload generator tests: suite integrity, patterns, calibration."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.workloads import (
    APP_ORDER,
    CATEGORY_OF,
    DataSpec,
    Workload,
    apps_by_category,
    get_workload,
    make_suite,
)


class TestSuiteIntegrity:
    def test_all_19_table1_apps_present(self):
        suite = make_suite()
        assert len(suite) == 19
        assert set(suite) == set(APP_ORDER)

    def test_category_counts_match_table1(self):
        assert len(apps_by_category("low")) == 5
        assert len(apps_by_category("mid")) == 9
        assert len(apps_by_category("high")) == 5

    def test_paper_mpki_increases_with_category(self):
        suite = make_suite()
        low = max(suite[a].paper_mpki for a in apps_by_category("low"))
        mid_min = min(suite[a].paper_mpki for a in apps_by_category("mid"))
        mid_max = max(suite[a].paper_mpki for a in apps_by_category("mid"))
        high = min(suite[a].paper_mpki for a in apps_by_category("high"))
        assert low < mid_min and mid_max < high * 4  # matr overlaps st2d

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            get_workload("nosuchapp")

    def test_pec_buffer_fits_all_data(self):
        """Table I apps use at most five large data (Section IV-E)."""
        for workload in make_suite().values():
            assert len(workload.data) <= 5


class TestTraceGeneration:
    def rng(self):
        return np.random.default_rng(3)

    def test_offsets_stay_in_bounds(self):
        for workload in make_suite().values():
            for cta in workload.build_ctas(self.rng(), scale=0.05):
                for data_idx, offset in zip(cta.data_index, cta.page_offset):
                    assert 0 <= offset < workload.data[data_idx].pages, \
                        workload.abbr

    def test_scale_controls_length(self):
        w = get_workload("fft")
        short = w.build_ctas(self.rng(), scale=0.1)
        long = w.build_ctas(self.rng(), scale=0.5)
        assert len(long[0]) > len(short[0])
        assert len(short) == len(long) == w.num_ctas

    def test_stream_pattern_sweeps_slice(self):
        w = get_workload("gemv")
        ctas = w.build_ctas(self.rng(), scale=0.3)
        first = ctas[0]
        main_offsets = first.page_offset[first.data_index == 0]
        lo, hi = w._cta_slice(0, w.main.pages)
        assert main_offsets.min() >= lo
        assert main_offsets.max() < hi

    def test_gather_pattern_targets_second_data(self):
        w = get_workload("spmv")
        ctas = w.build_ctas(self.rng(), scale=0.3)
        gathered = sum(int((c.data_index == 1).sum()) for c in ctas)
        total = sum(len(c) for c in ctas)
        assert 0.5 < gathered / total < 0.9  # gather_fraction 0.7

    def test_zipf_gathers_are_skewed(self):
        w = get_workload("pr")
        ctas = w.build_ctas(self.rng(), scale=1.0)
        ranks = np.concatenate([
            c.page_offset[c.data_index == 1] for c in ctas])
        # The hottest page draws far more than the uniform share.
        _values, counts = np.unique(ranks, return_counts=True)
        assert counts.max() > 20 * counts.mean()

    def test_stride_pattern_has_constant_stride(self):
        w = get_workload("fwt")
        cta = w.build_ctas(self.rng(), scale=0.3)[0]
        diffs = np.diff(cta.page_offset)
        stride = w.params["stride_pages"]
        # modulo wraps aside, consecutive accesses jump by the stride.
        assert (np.abs(diffs) % stride == 0).mean() > 0.95

    def test_stencil_touches_neighbouring_rows(self):
        w = get_workload("st2d")
        cta = w.build_ctas(self.rng(), scale=0.3)[8]
        offs = cta.page_offset
        width = w.params["row_width"]
        gaps = np.abs(np.diff(offs[:3]))
        assert width in gaps

    def test_deterministic_given_seed(self):
        w = get_workload("gups")
        a = w.build_ctas(np.random.default_rng(5), scale=0.2)
        b = w.build_ctas(np.random.default_rng(5), scale=0.2)
        assert all((x.page_offset == y.page_offset).all()
                   for x, y in zip(a, b))


class TestScaling:
    def test_scaled_multiplies_footprints(self):
        w = get_workload("st2d")
        big = w.scaled(16)
        assert big.main.pages == w.main.pages * 16
        assert big.abbr == w.abbr

    def test_requests_page_scale(self):
        w = get_workload("st2d")
        reqs_4k = w.requests(page_scale=1)
        reqs_2m = w.requests(page_scale=512)
        assert reqs_4k[0].pages == w.main.pages
        assert reqs_2m[0].pages == -(-w.main.pages // 512)


class TestValidation:
    def test_bad_pattern_rejected(self):
        with pytest.raises(ConfigError):
            Workload(abbr="x", app_name="x", suite="s", category="low",
                     paper_mpki=1.0, data=(DataSpec("d", pages=4),),
                     pattern="nope", weight=1.0, gap=1)

    def test_bad_shared_mix_rejected(self):
        with pytest.raises(ConfigError):
            Workload(abbr="x", app_name="x", suite="s", category="low",
                     paper_mpki=1.0, data=(DataSpec("d", pages=4),),
                     pattern="stream", weight=1.0, gap=1, shared_mix=1.5)

    def test_empty_data_rejected(self):
        with pytest.raises(ConfigError):
            Workload(abbr="x", app_name="x", suite="s", category="low",
                     paper_mpki=1.0, data=(), pattern="stream",
                     weight=1.0, gap=1)
