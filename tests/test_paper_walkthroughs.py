"""Executable versions of the paper's worked walkthroughs.

* Fig 7a/7b — one walk covers a whole coalescing group at the IOMMU.
* Fig 12 — the 8-step F-Barre exchange between GPU0 and GPU1 for pages
  0xA1/0xA2 (filter update, RCF hit, peer-side PEC calculation).
"""

from repro.common import (
    CuckooConfig,
    EventQueue,
    IommuConfig,
    MappingKind,
    MemoryMap,
    TlbConfig,
)
from repro.core import CoalescingAgent
from repro.iommu import AtsRequest, Iommu, PecLogic
from repro.mapping import (
    AllocationRequest,
    FrameAllocatorGroup,
    GpuDriver,
    PecBuffer,
    make_policy,
)
from repro.memsim import AddressSpaceRegistry, Tlb, TlbEntry


def build_system(num_chiplets=2):
    mm = MemoryMap(num_chiplets=num_chiplets, frames_per_chiplet=4096)
    allocators = FrameAllocatorGroup(num_chiplets, 4096)
    spaces = AddressSpaceRegistry()
    driver = GpuDriver(mm, allocators, spaces,
                       make_policy(MappingKind.LASP, num_chiplets),
                       barre_enabled=True)
    return mm, spaces, driver


class TestFig7bIommuCoalescing:
    """Fig 7b: pending group members are answered 'behind the scenes'."""

    def test_one_walk_latency_covers_the_group(self):
        queue = EventQueue()
        mm, spaces, driver = build_system(num_chiplets=4)
        rec = driver.malloc(AllocationRequest(data_id=1, pages=12,
                                              row_pages=3))
        responses = []
        iommu = Iommu(queue, IommuConfig(num_ptws=1, walk_latency=500),
                      spaces, driver.pec_buffer, mm.chiplet_bases,
                      responses.append, barre_enabled=True)
        # The four chiplets request the green group (0th VPN per chunk)
        # at similar times, exactly as Fig 7b draws it.
        desc = rec.descriptor
        for chiplet, vpn in enumerate(desc.group_vpns(rec.start_vpn)):
            iommu.receive(AtsRequest(pasid=0, vpn=vpn, src_chiplet=chiplet,
                                     issue_time=0))
        queue.run()
        assert len(responses) == 4
        assert queue.now == 500            # one walk's latency in total
        assert iommu.stats.count("walks") == 1
        assert iommu.stats.count("pec_coalesced") == 3
        sources = sorted(r.source for r in responses)
        assert sources == ["pec", "pec", "pec", "walk"]


class TestFig12Walkthrough:
    """The paper's step table, executed against real components."""

    def setup_method(self):
        self.mm, self.spaces, self.driver = build_system(num_chiplets=2)
        # Pages 0xA1/0xA2-analogue: a 2-page data coalesced over GPU0/GPU1.
        self.rec = self.driver.malloc(AllocationRequest(data_id=1, pages=2,
                                                        row_pages=1))
        self.vpn_a1 = self.rec.start_vpn
        self.vpn_a2 = self.rec.start_vpn + 1
        self.l2 = {}
        self.agents = {}
        for cid in range(2):
            l2 = Tlb(TlbConfig(entries=64, ways=4, lookup_latency=10,
                               mshrs=8), name=f"l2.{cid}")
            pec = PecLogic(PecBuffer(5), self.mm.chiplet_bases)
            self.l2[cid] = l2
            self.agents[cid] = CoalescingAgent(
                cid, 2, CuckooConfig(rows=64), pec, l2,
                send_update=self._deliver)

    def _deliver(self, peer, update):
        self.agents[peer].apply_update(update)

    def test_steps_0_through_8(self):
        table = self.spaces.get(0)
        fields = table.walk(self.vpn_a1)
        desc = self.driver.pec_buffer.lookup(0, self.vpn_a1)

        # [steps 0-1] GPU0 receives the ATS response for 0xA1 and inserts
        # it; the insert hook updates GPU0's LCF.
        self.l2[0].insert(TlbEntry(pasid=0, vpn=self.vpn_a1,
                                   global_pfn=fields.global_pfn,
                                   coal=fields, pec=desc))
        assert self.agents[0].lcf.contains(self.vpn_a1)

        # [step 2] GPU1's RCF_0 was updated with 0xA1 *and* 0xA2.
        assert self.agents[1].rcfs[0].contains(self.vpn_a1)
        assert self.agents[1].rcfs[0].contains(self.vpn_a2)

        # [step 3] GPU1 misses on 0xA2: TLB and LCF miss, RCF_0 hits.
        assert self.l2[1].probe(0, self.vpn_a2) is None
        assert not self.agents[1].lcf.contains(self.vpn_a2)
        assert self.agents[1].predict_sharer(0, self.vpn_a2) == 0

        # [steps 4-7] GPU0 serves the request: calculates coalescing VPNs,
        # finds 0xA1 in its LCF, visits its TLB, computes 0xA2's PFN.
        entry = self.agents[0].handle_peer_request(0, self.vpn_a2)
        assert entry is not None
        assert entry.global_pfn == table.walk(self.vpn_a2).global_pfn

        # [step 8] GPU1 inserts the computed PFN into its TLB; its own
        # LCF and GPU0's RCF_1 now track it.
        self.l2[1].insert(entry)
        assert self.l2[1].probe(0, self.vpn_a2) is not None
        assert self.agents[0].rcfs[1].contains(self.vpn_a2)

    def test_eviction_reverses_step_2(self):
        table = self.spaces.get(0)
        fields = table.walk(self.vpn_a1)
        desc = self.driver.pec_buffer.lookup(0, self.vpn_a1)
        self.l2[0].insert(TlbEntry(pasid=0, vpn=self.vpn_a1,
                                   global_pfn=fields.global_pfn,
                                   coal=fields, pec=desc))
        self.l2[0].invalidate(0, self.vpn_a1)
        assert not self.agents[1].rcfs[0].contains(self.vpn_a1)
        assert not self.agents[1].rcfs[0].contains(self.vpn_a2)
        assert self.agents[1].predict_sharer(0, self.vpn_a2) is None
