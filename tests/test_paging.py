"""On-demand paging tests (Section VI extension)."""

import pytest

from repro.common import ConfigError, MappingKind, MemoryMap, SimConfig
from repro.experiments import configs
from repro.gpu import McmGpuSimulator
from repro.mapping import (
    AllocationRequest,
    FrameAllocatorGroup,
    GpuDriver,
    make_policy,
)
from repro.memsim import AddressSpaceRegistry
from repro.paging import DemandPager
from repro.workloads import get_workload


def make_driver(barre=True, num_chiplets=4, frames=512):
    mm = MemoryMap(num_chiplets=num_chiplets, frames_per_chiplet=frames)
    allocators = FrameAllocatorGroup(num_chiplets, frames)
    spaces = AddressSpaceRegistry()
    driver = GpuDriver(mm, allocators, spaces,
                       make_policy(MappingKind.LASP, num_chiplets),
                       barre_enabled=barre)
    return driver, spaces


class TestDriverLazyPath:
    def test_lazy_malloc_maps_nothing(self):
        driver, spaces = make_driver()
        rec = driver.malloc_lazy(AllocationRequest(data_id=1, pages=8,
                                                   row_pages=2))
        assert len(spaces.get(0)) == 0
        assert rec.descriptor is not None
        assert driver.pec_buffer.lookup(0, rec.start_vpn) is not None

    def test_fault_in_maps_whole_group_under_barre(self):
        driver, spaces = make_driver(barre=True)
        rec = driver.malloc_lazy(AllocationRequest(data_id=1, pages=8,
                                                   row_pages=2))
        mapped = driver.fault_in(0, rec.start_vpn)
        # Group of vpn: one page per chiplet (gran 2 -> members 0,2,4,6).
        assert sorted(mapped) == [rec.start_vpn + i for i in (0, 2, 4, 6)]
        table = spaces.get(0)
        for vpn in mapped:
            assert table.walk(vpn).is_coalesced

    def test_fault_in_is_idempotent(self):
        driver, _spaces = make_driver()
        rec = driver.malloc_lazy(AllocationRequest(data_id=1, pages=4))
        assert driver.fault_in(0, rec.start_vpn)
        assert driver.fault_in(0, rec.start_vpn) == []
        assert driver.fault_in(0, rec.start_vpn + 1) == []  # same group

    def test_fault_in_single_page_without_barre(self):
        driver, spaces = make_driver(barre=False)
        rec = driver.malloc_lazy(AllocationRequest(data_id=1, pages=8,
                                                   row_pages=2))
        mapped = driver.fault_in(0, rec.start_vpn)
        assert mapped == [rec.start_vpn]
        assert len(spaces.get(0)) == 1

    def test_chiplet_of_falls_back_to_plan_before_fault(self):
        driver, _spaces = make_driver()
        rec = driver.malloc_lazy(AllocationRequest(data_id=1, pages=8,
                                                   row_pages=2))
        # gran 2: offsets 0-1 -> chiplet 0, 2-3 -> chiplet 1, ...
        assert driver.chiplet_of(0, rec.start_vpn + 2) == 1


class TestDemandPager:
    def test_group_fetch_amortization(self):
        driver, _spaces = make_driver(barre=True)
        pager = DemandPager(driver, fault_latency=1000)
        pager.malloc(AllocationRequest(data_id=1, pages=8, row_pages=2))
        rec = driver.data[(0, 1)]
        assert pager.handle_fault(0, rec.start_vpn) == 1000
        assert pager.pages_per_fault() == 4.0
        assert pager.stats.count("group_fetches") == 1

    def test_rejects_bad_latency(self):
        driver, _spaces = make_driver()
        with pytest.raises(ConfigError):
            DemandPager(driver, fault_latency=0)


class TestEndToEnd:
    def test_demand_paging_runs_and_faults(self):
        cfg = configs.baseline(demand_paging=True, fault_latency=2000)
        result = McmGpuSimulator(cfg, [get_workload("fft")],
                                 trace_scale=0.05,
                                 verify_translations=True).run()
        assert result.page_faults > 0
        assert result.pages_per_fault >= 1.0

    def test_barre_groups_amortize_faults(self):
        """Group-granular fetch: F-Barre takes far fewer faults."""
        base = McmGpuSimulator(
            configs.baseline(demand_paging=True),
            [get_workload("fft")], trace_scale=0.05).run()
        chord = McmGpuSimulator(
            configs.fbarre(demand_paging=True),
            [get_workload("fft")], trace_scale=0.05).run()
        assert chord.pages_per_fault > 1.5
        assert chord.page_faults < base.page_faults
        assert chord.cycles < base.cycles

    def test_demand_paging_with_gmmu(self):
        cfg = configs.mgvm(barre_chord=True).replace(demand_paging=True)
        result = McmGpuSimulator(cfg, [get_workload("fft")],
                                 trace_scale=0.05,
                                 verify_translations=True).run()
        assert result.page_faults > 0

    def test_demand_paging_excludes_migration(self):
        with pytest.raises(ConfigError):
            SimConfig(demand_paging=True,
                      migration=SimConfig().migration.__class__(enabled=True))
