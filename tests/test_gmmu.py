"""GMMU tests: local vs remote walks, PEC integration."""

from repro.common import (
    EventQueue,
    IommuConfig,
    LinkConfig,
    MappingKind,
    MemoryMap,
)
from repro.gmmu import Gmmu, GmmuHandler
from repro.iommu import AtsRequest
from repro.mapping import (
    AllocationRequest,
    FrameAllocatorGroup,
    GpuDriver,
    make_policy,
)
from repro.memsim import AddressSpaceRegistry, Mesh


def make_gmmu(chiplet_id=0, barre=False, walk=100):
    queue = EventQueue()
    mm = MemoryMap(num_chiplets=4, frames_per_chiplet=4096)
    allocators = FrameAllocatorGroup(4, 4096)
    spaces = AddressSpaceRegistry()
    driver = GpuDriver(mm, allocators, spaces,
                       make_policy(MappingKind.CHUNKING, 4),
                       barre_enabled=barre)
    mesh = Mesh(queue, LinkConfig(latency=32, cycles_per_packet=1), 4)
    responses = []
    gmmu = Gmmu(queue, chiplet_id,
                IommuConfig(num_ptws=2, walk_latency=walk),
                spaces, driver.pec_buffer, mm.chiplet_bases,
                respond=responses.append,
                pt_owner=driver.chiplet_of, mesh=mesh,
                barre_enabled=barre)
    return queue, driver, gmmu, responses, mesh


def req(vpn, chiplet=0):
    return AtsRequest(pasid=0, vpn=vpn, src_chiplet=chiplet, issue_time=0)


def test_local_walk_costs_base_latency():
    queue, driver, gmmu, responses, _mesh = make_gmmu(chiplet_id=0)
    rec = driver.malloc(AllocationRequest(data_id=1, pages=8))
    # Chunking maps the first two pages to chiplet 0: local walk.
    gmmu.receive(req(rec.start_vpn))
    queue.run()
    assert queue.now == 100
    assert gmmu.stats.count("local_walks") == 1
    assert gmmu.stats.count("remote_walks") == 0


def test_remote_walk_adds_mesh_round_trip():
    queue, driver, gmmu, responses, mesh = make_gmmu(chiplet_id=0)
    rec = driver.malloc(AllocationRequest(data_id=1, pages=8))
    # The last pages live on chiplet 3: remote page-table walk.
    gmmu.receive(req(rec.end_vpn))
    queue.run()
    assert queue.now == 100 + 2 * 32
    assert gmmu.stats.count("remote_walks") == 1
    assert mesh.packets_sent == 2  # PTE fetch there and back


def test_remote_walk_fraction():
    queue, driver, gmmu, _responses, _mesh = make_gmmu()
    rec = driver.malloc(AllocationRequest(data_id=1, pages=8))
    for vpn in range(rec.start_vpn, rec.end_vpn + 1):
        gmmu.receive(req(vpn))
    queue.run()
    assert 0 < gmmu.remote_walk_fraction() < 1


def test_barre_gmmu_coalesces():
    queue, driver, gmmu, responses, _mesh = make_gmmu(barre=True)
    rec = driver.malloc(AllocationRequest(data_id=1, pages=4, row_pages=1))
    assert rec.coalesced_pages == 4
    for vpn in range(rec.start_vpn, rec.start_vpn + 4):
        gmmu.receive(req(vpn))
    queue.run()
    assert gmmu.stats.count("pec_coalesced") > 0
    assert len(responses) == 4


def test_handler_routes_and_delivers():
    queue, driver, gmmu, _responses, _mesh = make_gmmu()
    rec = driver.malloc(AllocationRequest(data_id=1, pages=4))
    handler = GmmuHandler(gmmu, chiplet_id=0)
    got = []
    handler.resolve(0, rec.start_vpn, got.append)
    handler.resolve(0, rec.start_vpn, got.append)  # merged
    queue.run()
    assert len(got) == 2
    table = driver.spaces.get(0)
    assert got[0].global_pfn == table.walk(rec.start_vpn).global_pfn
    assert gmmu.stats.count("walks") == 1
