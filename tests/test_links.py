"""Link / mesh serialization and latency tests."""

import pytest

from repro.common import EventQueue, LinkConfig
from repro.memsim import DuplexLink, Link, Mesh


def test_single_packet_latency():
    q = EventQueue()
    link = Link(q, LinkConfig(latency=150, cycles_per_packet=2))
    arrivals = []
    link.send("ats", lambda p: arrivals.append((q.now, p)))
    q.run()
    assert arrivals == [(150, "ats")]


def test_back_to_back_packets_serialize():
    """Packets sent the same cycle queue behind each other."""
    q = EventQueue()
    link = Link(q, LinkConfig(latency=100, cycles_per_packet=10))
    times = []
    for i in range(3):
        link.send(i, lambda p: times.append(q.now))
    q.run()
    assert times == [100, 110, 120]


def test_oracle_link_ignores_bandwidth():
    q = EventQueue()
    link = Link(q, LinkConfig(latency=100, cycles_per_packet=10), oracle=True)
    times = []
    for i in range(3):
        link.send(i, lambda p: times.append(q.now))
    q.run()
    assert times == [100, 100, 100]


def test_link_idle_gap_resets_serialization():
    q = EventQueue()
    link = Link(q, LinkConfig(latency=5, cycles_per_packet=10))
    times = []
    link.send("a", lambda p: times.append(q.now))
    q.schedule(50, lambda: link.send("b", lambda p: times.append(q.now)))
    q.run()
    assert times == [5, 55]  # second packet sees an idle link


def test_duplex_directions_independent():
    q = EventQueue()
    duplex = DuplexLink(q, LinkConfig(latency=10, cycles_per_packet=10))
    times = []
    duplex.up.send("u", lambda p: times.append(("u", q.now)))
    duplex.down.send("d", lambda p: times.append(("d", q.now)))
    q.run()
    assert sorted(times) == [("d", 10), ("u", 10)]
    assert duplex.packets_sent == 2


def test_mesh_routes_between_chiplets():
    q = EventQueue()
    mesh = Mesh(q, LinkConfig(latency=32, cycles_per_packet=1), num_chiplets=4)
    got = []
    mesh.send(0, 3, "probe", lambda p: got.append((q.now, p)))
    q.run()
    assert got == [(32, "probe")]
    assert mesh.packets_sent == 1


def test_mesh_rejects_self_send():
    q = EventQueue()
    mesh = Mesh(q, LinkConfig(latency=32), num_chiplets=2)
    with pytest.raises(ValueError):
        mesh.send(1, 1, "x", lambda p: None)


def test_mesh_pairs_have_independent_bandwidth():
    q = EventQueue()
    mesh = Mesh(q, LinkConfig(latency=10, cycles_per_packet=100), num_chiplets=3)
    times = []
    mesh.send(0, 1, "a", lambda p: times.append(q.now))
    mesh.send(0, 2, "b", lambda p: times.append(q.now))
    mesh.send(0, 1, "c", lambda p: times.append(q.now))
    q.run()
    assert sorted(times) == [10, 10, 110]  # only the repeated pair queues
