"""Golden-run regression net: a cycle-for-cycle behavioral freeze.

Every point in :data:`POINTS` is simulated with tracing on and reduced to
three artifacts that together pin the simulator's observable behavior:

* the **full serialized stats payload** (every ``SimResult`` field the
  disk cache persists, including the VPN-gap and latency histograms);
* the **SHA256 of the trace JSONL export** — the byte-exact span stream,
  which freezes the cycle stamp of every phase transition of every
  translation request;
* the **SHA256 of the cache payload** (``json.dumps`` of the serialized
  stats) — what :mod:`repro.experiments.runner` writes to disk, so cached
  results stay loadable and byte-identical across refactors.

The goldens under ``tests/golden/`` were captured before the hot-path
optimization work and must survive it unchanged: any drift — a different
event order, a changed latency, a reordered dict — fails here with the
first divergent stat named.  That is the contract that lets the inner
loops be rewritten aggressively.

Regenerate only when a *semantic* change is intended (and say so in the
commit message, since cached sweep results invalidate too — bump
``SIM_VERSION``):

    PYTHONPATH=src python tests/test_golden_runs.py --regen
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments import configs
from repro.experiments.runner import _serialize
from repro.common.trace import write_spans_jsonl
from repro.gpu.mcm import McmGpuSimulator
from repro.workloads.suite import get_workload

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small but path-diverse: every translation backend, the IOMMU TLB, and
#: migration each exercise a different set of inner loops.
SCALE = 0.05

POINTS: dict[str, tuple] = {
    "baseline-gemv": (configs.baseline, (), "gemv"),
    "shared-l2-gemv": (configs.shared_l2, (), "gemv"),
    "valkyrie-gemv": (configs.valkyrie, (), "gemv"),
    "least-gemv": (configs.least, (), "gemv"),
    "barre-gemv": (configs.barre, (), "gemv"),
    "fbarre-gemv": (configs.fbarre, (), "gemv"),
    "fbarre-fft": (configs.fbarre, (), "fft"),
    "mgvm-gemv": (configs.mgvm, (), "gemv"),
    "iommu-tlb-gemv": (lambda: configs.with_iommu_tlb(configs.baseline()),
                       (), "gemv"),
    "fbarre-migration-gemv": (lambda: configs.with_migration(configs.fbarre()),
                              (), "gemv"),
}


def _digest(name: str, tmp_dir: Path) -> dict:
    """Run one golden point and reduce it to its frozen artifacts."""
    factory, args, app = POINTS[name]
    sim = McmGpuSimulator(factory(*args), [get_workload(app)],
                          trace_scale=SCALE, trace=True)
    result = sim.run()
    cache_payload = json.dumps(_serialize(result))
    jsonl_path = write_spans_jsonl(sim.tracer.spans, tmp_dir / f"{name}.jsonl")
    return {
        "point": name,
        "app": app,
        "scale": SCALE,
        # Round-trip through JSON so regen and check compare like with like.
        "stats": json.loads(cache_payload),
        "spans": len(sim.tracer.spans),
        "trace_jsonl_sha256": hashlib.sha256(
            jsonl_path.read_bytes()).hexdigest(),
        "cache_payload_sha256": hashlib.sha256(
            cache_payload.encode()).hexdigest(),
    }


def _flatten(value, prefix: str = "") -> dict[str, object]:
    """Dotted-key view of a nested stats payload, for readable diffs."""
    if isinstance(value, dict):
        out: dict[str, object] = {}
        for key in sorted(value):
            out.update(_flatten(value[key], f"{prefix}.{key}" if prefix
                                else str(key)))
        return out
    return {prefix: value}


def _first_divergence(golden: dict, actual: dict) -> str | None:
    """Human-readable description of the first differing stat, or None."""
    flat_golden = _flatten(golden)
    flat_actual = _flatten(actual)
    for key in sorted(set(flat_golden) | set(flat_actual)):
        if key not in flat_actual:
            return f"{key}: golden={flat_golden[key]!r}, now missing"
        if key not in flat_golden:
            return f"{key}: new stat {flat_actual[key]!r}, absent from golden"
        if flat_golden[key] != flat_actual[key]:
            return (f"{key}: golden={flat_golden[key]!r}, "
                    f"got={flat_actual[key]!r}")
    return None


@pytest.mark.parametrize("name", sorted(POINTS))
def test_golden_run(name: str, tmp_path: Path) -> None:
    golden_path = GOLDEN_DIR / f"{name}.json"
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        f"`PYTHONPATH=src python tests/test_golden_runs.py --regen`")
    golden = json.loads(golden_path.read_text())
    actual = _digest(name, tmp_path)

    divergence = _first_divergence(golden["stats"], actual["stats"])
    assert divergence is None, (
        f"behavioral drift in {name}: first divergent stat -> {divergence}\n"
        f"(if this change is intentional, regenerate the goldens AND bump "
        f"SIM_VERSION in src/repro/experiments/runner.py)")
    assert actual["spans"] == golden["spans"], (
        f"{name}: span count drifted {golden['spans']} -> {actual['spans']}")
    assert actual["trace_jsonl_sha256"] == golden["trace_jsonl_sha256"], (
        f"{name}: trace JSONL bytes drifted (stats identical — a phase "
        f"stamp moved or reordered; diff `repro trace --format jsonl`)")
    assert actual["cache_payload_sha256"] == golden["cache_payload_sha256"], (
        f"{name}: cache payload bytes drifted (stats compare equal but "
        f"serialize differently — key order or float formatting changed)")


def test_batch_engine_is_off_by_default(tmp_path: Path,
                                        monkeypatch) -> None:
    """The batch engine must be invisible unless explicitly requested.

    Three independent guarantees: a fresh config selects the event
    engine; ``make_simulator`` with default settings builds the event
    simulator even with ``REPRO_ENGINE`` exported (the env override is
    resolved in the runner's ``point_key``/``run_point`` layer, never
    inside the simulator constructor path used here); and a golden point
    re-digested with the env var set stays byte-identical.
    """
    from repro.batch import make_simulator
    from repro.common.config import SimConfig

    assert SimConfig().engine == "event"
    monkeypatch.setenv("REPRO_ENGINE", "batch")
    sim = make_simulator(configs.baseline(), [get_workload("gemv")],
                         trace_scale=SCALE)
    assert isinstance(sim, McmGpuSimulator)

    name = "baseline-gemv"
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    actual = _digest(name, tmp_path)
    assert actual["cache_payload_sha256"] == golden["cache_payload_sha256"]
    assert actual["trace_jsonl_sha256"] == golden["trace_jsonl_sha256"]


def test_engine_field_changes_cache_key_not_payload_bytes() -> None:
    """``engine`` participates in the cache key (so batch results can
    never shadow event-engine entries) but lives outside the persisted
    payload fields, so default-path cache files stay byte-identical."""
    from repro.experiments.runner import point_key

    cfg = configs.baseline()
    assert point_key(cfg, "gemv", SCALE) != point_key(
        cfg.replace(engine="batch"), "gemv", SCALE)

    golden = json.loads((GOLDEN_DIR / "baseline-gemv.json").read_text())
    assert "engine" not in golden["stats"], (
        "the engine marker leaked into the persisted payload; that would "
        "change cache bytes for every default-path result")


def test_golden_matrix_has_no_strays() -> None:
    """Every golden file corresponds to a live matrix point."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(POINTS), (
        f"golden files and POINTS disagree: "
        f"only on disk {sorted(on_disk - set(POINTS))}, "
        f"only in matrix {sorted(set(POINTS) - on_disk)}")


def _regen() -> None:
    import tempfile

    GOLDEN_DIR.mkdir(exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        for name in sorted(POINTS):
            digest = _digest(name, Path(tmp))
            path = GOLDEN_DIR / f"{name}.json"
            path.write_text(json.dumps(digest, indent=2, sort_keys=True)
                            + "\n")
            print(f"wrote {path} ({digest['spans']} spans, "
                  f"{digest['stats']['cycles']} cycles)")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regen", action="store_true",
                        help="regenerate tests/golden/*.json from this build")
    if parser.parse_args().regen:
        _regen()
    else:
        parser.error("pass --regen (plain runs happen through pytest)")
