"""The docs-drift gate itself, run as a test so `pytest` is the one gate.

CI also runs ``scripts/check_docs_drift.py`` standalone; this test keeps
the same check inside the tier-1 suite and pins the script's contract
(exit 0 when docs are complete, exit 1 naming each missing item).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_docs_drift.py"


def run_checker(extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.update(extra_env or {})
    return subprocess.run([sys.executable, str(SCRIPT)], cwd=REPO,
                          capture_output=True, text=True, env=env)


def test_docs_cover_every_subcommand_and_route():
    proc = run_checker()
    assert proc.returncode == 0, (
        f"docs drift detected:\n{proc.stderr}{proc.stdout}")
    assert "OK" in proc.stdout


def test_checker_enumerates_from_live_code():
    """The gate reads the parser and route table, not a hardcoded list."""
    sys.path.insert(0, str(REPO / "scripts"))
    try:
        import check_docs_drift as drift
    finally:
        sys.path.pop(0)
    cmds = drift.cli_subcommands()
    assert "serve" in cmds and "sweep" in cmds and "validate" in cmds
    templates = [r.template for r in drift.service_routes()]
    assert "/jobs/{id}" in templates and "/results/{key}" in templates
