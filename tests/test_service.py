"""Route-level tests for the simulation-as-a-service job API.

Each test boots the real asyncio server (``BackgroundServer``) on an
ephemeral port and talks plain HTTP through urllib — the same framing a
curl client uses — so these cover the transport, routing, schemas,
quotas, the job lifecycle, and the shared-cache guarantees end to end.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.experiments import configs
from repro.experiments import runner as runner_mod
from repro.experiments.sweep import SweepJob, SweepPoint, sweep
from repro.gpu.mcm import McmGpuSimulator
from repro.service import (
    BackgroundServer,
    JobStore,
    QuotaExceeded,
    QuotaLedger,
    QuotaPolicy,
    ServiceApp,
)

SCALE = 0.05
TERMINAL = ("completed", "failed", "cancelled")


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return tmp_path


@pytest.fixture
def make_service(cache):
    """Factory for (server, store) pairs; everything torn down at exit."""
    live = []

    def _make(points_per_window=2000, window_seconds=60.0,
              max_concurrent_jobs=4, job_slots=1):
        store = JobStore(
            quota=QuotaPolicy(points_per_window=points_per_window,
                              window_seconds=window_seconds,
                              max_concurrent_jobs=max_concurrent_jobs),
            job_slots=job_slots, sweep_jobs=1)
        server = BackgroundServer(ServiceApp(store)).start()
        live.append((server, store))
        return server, store

    yield _make
    for server, store in live:
        store.begin_shutdown("cancel")
        store.drain()
        server.stop()


@pytest.fixture
def slow_sim(monkeypatch):
    """Make every simulation take >=0.25s so tests can race it reliably."""
    real = McmGpuSimulator.run

    def slow(self):
        time.sleep(0.25)
        return real(self)

    monkeypatch.setattr(McmGpuSimulator, "run", slow)


def request(base, method, path, body=None, token=None):
    """One HTTP round trip -> (status, headers, bytes)."""
    headers = {"Content-Type": "application/json"}
    if token:
        headers["X-Repro-Token"] = token
    req = urllib.request.Request(
        base + path, method=method, headers=headers,
        data=json.dumps(body).encode() if body is not None else None)
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def poll_job(base, job_id, timeout=90.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = request(base, "GET", f"/jobs/{job_id}")
        assert status == 200
        job = json.loads(body)
        if job["state"] in TERMINAL:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def gemv_point(scheme="baseline"):
    return {"scheme": scheme, "app": "gemv", "scale": SCALE}


class TestBasics:
    def test_healthz_and_meta(self, make_service):
        server, _ = make_service()
        status, _, body = request(server.base_url, "GET", "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, _, body = request(server.base_url, "GET", "/meta")
        meta = json.loads(body)
        assert status == 200
        assert "gemv" in meta["apps"]
        assert "fbarre" in meta["schemes"]
        assert "fig15" in meta["figures"]
        assert meta["schedulers"] == ["affinity", "flat", "serial",
                                      "distributed"]

    def test_unknown_route_404_and_wrong_method_405(self, make_service):
        server, _ = make_service()
        assert request(server.base_url, "GET", "/nope")[0] == 404
        assert request(server.base_url, "DELETE", "/healthz")[0] == 405

    def test_unknown_job_and_result_404(self, make_service):
        server, _ = make_service()
        assert request(server.base_url, "GET", "/jobs/j999999")[0] == 404
        assert request(server.base_url, "DELETE", "/jobs/j999999")[0] == 404
        # Well-formed digest, never simulated:
        assert request(server.base_url, "GET",
                       "/results/" + "0" * 24)[0] == 404
        # Malformed digest must not touch the filesystem:
        assert request(server.base_url, "GET",
                       "/results/../etc/passwd")[0] == 404

    def test_schema_errors_are_400_with_reason(self, make_service):
        server, _ = make_service()
        cases = [
            ({"points": [{"scheme": "nosuch", "app": "gemv"}]}, "scheme"),
            ({"points": [{"scheme": "barre", "app": "nosuch"}]}, "app"),
            ({"figure": "fig999"}, "figure"),
            ({"points": [], }, "non-empty"),
            ({"figure": "fig05", "points": [gemv_point()]}, "exactly one"),
            ({"points": [gemv_point()], "scale": 99}, "out of range"),
            ({"validate": {"schemes": ["nosuch"]}}, "validate.schemes"),
            ({}, "exactly one"),
        ]
        for payload, needle in cases:
            status, _, body = request(server.base_url, "POST", "/jobs",
                                      payload)
            assert status == 400, payload
            assert needle in json.loads(body)["error"]

    def test_non_json_body_is_400(self, make_service):
        server, _ = make_service()
        req = urllib.request.Request(server.base_url + "/jobs",
                                     method="POST", data=b"not json {")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400


class TestJobLifecycle:
    def test_submit_poll_fetch_happy_path(self, cache, make_service):
        server, _ = make_service()
        status, _, body = request(server.base_url, "POST", "/jobs",
                                  {"points": [gemv_point()]})
        assert status == 202
        submitted = json.loads(body)
        assert submitted["state"] in ("queued", "running")
        assert submitted["kind"] == "points"

        job = poll_job(server.base_url, submitted["id"])
        assert job["state"] == "completed"
        assert job["progress"]["done"] == job["progress"]["total"] == 1
        entry = job["result"]["points"][0]
        assert entry["app"] == "gemv" and entry["simulated"] is True
        assert job["result"]["stats"]["simulated"] == 1

        status, _, payload = request(server.base_url, "GET",
                                     entry["result_url"])
        assert status == 200
        cache_file = next(cache.glob(f"*-{entry['digest']}.json"))
        assert payload == cache_file.read_bytes(), (
            "HTTP result bytes diverge from the cache file")

        # The job shows up in the listing.
        _, _, body = request(server.base_url, "GET", "/jobs")
        assert [j["id"] for j in json.loads(body)["jobs"]] == [job["id"]]

    def test_cached_job_serves_cli_result_without_resimulation(
            self, cache, make_service, monkeypatch):
        from repro.cli import main
        assert main(["sweep", "--schemes", "baseline", "--apps", "gemv",
                     "--scale", str(SCALE), "--jobs", "1"]) == 0
        cli_file = next(cache.glob("*.json"))
        cli_bytes = cli_file.read_bytes()

        # Any simulation now would be a bug — make one impossible to miss.
        def boom(self):
            raise AssertionError("cache hit expected; simulator invoked")
        monkeypatch.setattr(McmGpuSimulator, "run", boom)

        server, _ = make_service()
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": [gemv_point()]})
        job = poll_job(server.base_url, json.loads(body)["id"])
        assert job["state"] == "completed"
        entry = job["result"]["points"][0]
        assert entry["simulated"] is False
        assert job["result"]["stats"]["cached"] == 1
        assert job["result"]["stats"]["simulated"] == 0
        _, _, payload = request(server.base_url, "GET", entry["result_url"])
        assert payload == cli_bytes, (
            "service payload is not byte-identical to the CLI cache fill")

    def test_distributed_scheduler_job_over_http(self, cache, make_service,
                                                 monkeypatch):
        """A job may pick the distributed backend; the coordinator's local
        helper drains it and the result surfaces like any other job."""
        monkeypatch.setenv("REPRO_DISTRIBUTED_LOCAL", "1")
        server, _ = make_service()
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": [gemv_point()],
                              "scheduler": "distributed"})
        job = poll_job(server.base_url, json.loads(body)["id"], timeout=180)
        assert job["state"] == "completed"
        assert job["result"]["stats"]["simulated"] == 1
        entry = job["result"]["points"][0]
        _, _, payload = request(server.base_url, "GET", entry["result_url"])
        assert payload == next(cache.glob("*.json")).read_bytes()

    def test_figure_job_runs_and_reports_output(self, cache, make_service):
        server, _ = make_service()
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"figure": "fig05", "scale": SCALE})
        job = poll_job(server.base_url, json.loads(body)["id"], timeout=180)
        assert job["state"] == "completed"
        assert job["result"]["figure"] == "fig05"
        assert "output" in job["result"]
        # fig05: 3 apps x (baseline, shared-l2) = 6 points, all cached now.
        assert len(job["result"]["points"]) == 6
        assert len(list(cache.glob("*.json"))) == 6

    def test_validate_job(self, cache, make_service):
        server, _ = make_service()
        _, _, body = request(
            server.base_url, "POST", "/jobs",
            {"validate": {"schemes": ["barre"], "seeds": 1}, "scale": 0.5})
        job = poll_job(server.base_url, json.loads(body)["id"], timeout=180)
        assert job["state"] == "completed"
        assert job["result"]["ok"] is True
        assert "accesses checked" in job["result"]["summary"]

    def test_cancel_running_job_is_point_boundary_deterministic(
            self, cache, make_service, slow_sim):
        server, _ = make_service()
        points = [{"scheme": s, "app": a, "scale": SCALE}
                  for s in ("baseline", "fbarre") for a in ("gemv", "fft")]
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": points})
        job_id = json.loads(body)["id"]
        time.sleep(0.4)     # let at least one slow point finish
        status, _, _ = request(server.base_url, "DELETE", f"/jobs/{job_id}")
        assert status == 200
        job = poll_job(server.base_url, job_id)
        assert job["state"] == "cancelled"
        assert "cancelled" in job["error"]
        # Whatever finished before the cancel is durable in the cache and
        # never torn: every file is complete, loadable JSON.
        files = list(cache.glob("*.json"))
        assert len(files) < 4
        for path in files:
            json.loads(path.read_text())
        assert not list(cache.glob("*.lock"))


class TestQuotas:
    def test_points_budget_rejects_with_retry_after(self, make_service):
        server, _ = make_service(points_per_window=1)
        status, headers, body = request(
            server.base_url, "POST", "/jobs",
            {"points": [gemv_point(), gemv_point("fbarre")]})
        assert status == 429
        assert "budget" in json.loads(body)["error"]
        # Over-budget-entirely has no meaningful retry hint.
        _, _, body2 = request(server.base_url, "POST", "/jobs",
                              {"points": [gemv_point()]})
        # First job never got admitted, so a 1-point job fits.
        assert json.loads(body2)["state"] in ("queued", "running")

    def test_window_spend_then_429_then_refill(self, make_service,
                                               slow_sim):
        server, _ = make_service(points_per_window=1, window_seconds=1.5)
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": [gemv_point()]}, token="alice")
        first = json.loads(body)["id"]
        status, headers, body = request(server.base_url, "POST", "/jobs",
                                        {"points": [gemv_point("barre")]},
                                        token="alice")
        assert status == 429
        assert "Retry-After" in headers
        assert int(headers["Retry-After"]) >= 1
        poll_job(server.base_url, first)
        time.sleep(1.6)     # window rolls over; budget refills
        status, _, _ = request(server.base_url, "POST", "/jobs",
                               {"points": [gemv_point("barre")]},
                               token="alice")
        assert status == 202

    def test_concurrent_job_cap(self, make_service, slow_sim):
        server, _ = make_service(max_concurrent_jobs=1, job_slots=1)
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": [gemv_point()]}, token="bob")
        first = json.loads(body)["id"]
        status, _, body = request(server.base_url, "POST", "/jobs",
                                  {"points": [gemv_point("barre")]},
                                  token="bob")
        assert status == 429
        assert "queued or running" in json.loads(body)["error"]
        # Another client is unaffected.
        status, _, _ = request(server.base_url, "POST", "/jobs",
                               {"points": [gemv_point()]}, token="carol")
        assert status == 202
        poll_job(server.base_url, first)
        # Slot freed: bob may submit again.
        status, _, _ = request(server.base_url, "POST", "/jobs",
                               {"points": [gemv_point("barre")]},
                               token="bob")
        assert status == 202

    def test_ledger_accounting_with_fake_clock(self):
        now = [0.0]
        ledger = QuotaLedger(QuotaPolicy(points_per_window=10,
                                         window_seconds=60.0,
                                         max_concurrent_jobs=2),
                             clock=lambda: now[0])
        ledger.admit("t", 6)
        ledger.admit("t", 4)
        with pytest.raises(QuotaExceeded) as err:
            ledger.admit("t", 1)    # budget spent and both slots taken
        ledger.release("t")
        ledger.release("t")
        with pytest.raises(QuotaExceeded) as err:
            ledger.admit("t", 1)    # slots free, but window still charged
        assert err.value.retry_after == pytest.approx(60.0)
        now[0] = 61.0               # both t=0 spends age out of the window
        ledger.admit("t", 6)
        assert ledger.usage("t")["points_in_window"] == 6
        ledger.admit("t", 4)        # exactly fills the refreshed budget
        with pytest.raises(QuotaExceeded):
            ledger.admit("t", 1)


class TestSharedCache:
    def test_http_job_and_cli_sweep_share_one_cache(self, cache,
                                                    make_service):
        """A service job and a concurrent CLI-style sweep overlap on one
        point; the lockfile discipline must let both finish with exactly
        one simulation per unique point."""
        server, _ = make_service()
        service_points = [gemv_point(), {"scheme": "baseline", "app": "fft",
                                         "scale": SCALE}]
        cli_points = [SweepPoint(configs.baseline(), "fft", SCALE),
                      SweepPoint(configs.baseline(), "spmv", SCALE)]

        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": service_points})
        job_id = json.loads(body)["id"]
        cli_outcome = {}
        thread = threading.Thread(
            target=lambda: cli_outcome.update(
                out=sweep(cli_points, jobs=1, progress=False)))
        thread.start()
        job = poll_job(server.base_url, job_id)
        thread.join(timeout=120)
        assert job["state"] == "completed"
        assert all(r is not None for r in cli_outcome["out"].results)
        # gemv, fft, spmv — fft simulated once despite both clients.
        assert len(list(cache.glob("*.json"))) == 3
        assert not list(cache.glob("*.lock"))
        assert not list(cache.glob("*.tmp"))
        fft_digest = runner_mod.point_digest(cli_points[0].key())
        _, _, payload = request(server.base_url, "GET",
                                f"/results/{fft_digest}")
        assert payload == next(cache.glob(f"*-{fft_digest}.json")).read_bytes()


class TestShutdown:
    def test_drain_finishes_inflight_and_rejects_new(self, cache,
                                                     make_service,
                                                     slow_sim):
        server, store = make_service()
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": [gemv_point()]})
        job_id = json.loads(body)["id"]
        store.begin_shutdown("drain")
        status, _, body = request(server.base_url, "POST", "/jobs",
                                  {"points": [gemv_point("barre")]})
        assert status == 503
        assert "shutting down" in json.loads(body)["error"]
        status, _, body = request(server.base_url, "GET", "/healthz")
        assert json.loads(body)["status"] == "shutting-down"
        store.drain()
        job = poll_job(server.base_url, job_id)
        assert job["state"] == "completed", "drain must finish in-flight jobs"

    def test_cancel_mode_stops_jobs_at_point_boundaries(self, cache,
                                                        make_service,
                                                        slow_sim):
        server, store = make_service()
        points = [{"scheme": s, "app": "gemv", "scale": SCALE}
                  for s in ("baseline", "barre", "fbarre", "least")]
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": points})
        job_id = json.loads(body)["id"]
        time.sleep(0.3)
        store.begin_shutdown("cancel")
        store.drain()
        _, _, body = request(server.base_url, "GET", f"/jobs/{job_id}")
        assert json.loads(body)["state"] == "cancelled"
        for path in cache.glob("*.json"):    # nothing torn
            json.loads(path.read_text())


class TestSweepJobHandle:
    """The service's unit of work, exercised directly (no HTTP)."""

    def test_run_completes_and_snapshot_reports(self, cache):
        job = SweepJob([SweepPoint(configs.baseline(), "gemv", SCALE)],
                       jobs=1)
        outcome = job.run()
        assert job.state == "completed"
        assert outcome.stats.simulated == 1
        snap = job.snapshot()
        assert snap["state"] == "completed"
        assert snap["progress"]["done"] == 1
        assert snap["stats"]["simulated"] == 1
        # Re-running a completed job is a no-op returning the outcome.
        assert job.run() is outcome

    def test_cancel_then_resume_serves_finished_points_from_cache(
            self, cache, slow_sim):
        points = [SweepPoint(cfg(), "gemv", SCALE)
                  for cfg in (configs.baseline, configs.barre,
                              configs.fbarre)]
        job = SweepJob(points, jobs=1)
        job.start()
        time.sleep(0.35)          # first point done, second in flight
        job.cancel()
        job.join(timeout=60)
        assert job.state == "cancelled"
        assert job.outcome is None
        finished = len(list(cache.glob("*.json")))
        assert 1 <= finished < 3

        outcome = job.run()       # resume
        assert job.state == "completed"
        assert len(outcome.results) == 3
        assert outcome.stats.cached == finished, (
            "resume must serve previously finished points from the cache")

    def test_double_start_is_rejected(self, cache, slow_sim):
        job = SweepJob([SweepPoint(configs.baseline(), "gemv", SCALE)],
                       jobs=1)
        job.start()
        with pytest.raises(RuntimeError, match="already running"):
            job.run()
        job.join(timeout=60)
        assert job.state == "completed"


class TestObservabilityRoutes:
    """The PR-7 routes: /metrics, /sweeps, job filtering, failure detail."""

    def test_metrics_route_is_valid_prometheus_text(self, make_service):
        from tests.test_metrics import parse_exposition
        server, _ = make_service()
        request(server.base_url, "GET", "/healthz")
        status, headers, body = request(server.base_url, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        parsed = parse_exposition(body.decode())
        samples = parsed["repro_http_requests_total"]["samples"]
        assert any('route="/healthz"' in line for line in samples)

    def test_jobs_listing_filters_and_limits_newest_first(self, cache,
                                                          make_service):
        server, _ = make_service()
        ids = []
        for scheme in ("baseline", "fbarre"):
            _, _, body = request(server.base_url, "POST", "/jobs",
                                 {"points": [gemv_point(scheme)]})
            ids.append(json.loads(body)["id"])
            poll_job(server.base_url, ids[-1])

        _, _, body = request(server.base_url, "GET", "/jobs")
        listing = json.loads(body)
        assert [j["id"] for j in listing["jobs"]] == list(reversed(ids))
        assert listing["total"] == 2

        _, _, body = request(server.base_url, "GET", "/jobs?limit=1")
        limited = json.loads(body)
        assert [j["id"] for j in limited["jobs"]] == [ids[-1]]
        assert limited["total"] == 2    # total counts matches, not the page

        _, _, body = request(server.base_url, "GET",
                             "/jobs?state=completed&limit=10")
        assert len(json.loads(body)["jobs"]) == 2
        _, _, body = request(server.base_url, "GET", "/jobs?state=failed")
        assert json.loads(body)["jobs"] == []

        status, _, _ = request(server.base_url, "GET", "/jobs?state=bogus")
        assert status == 400
        status, _, _ = request(server.base_url, "GET", "/jobs?limit=x")
        assert status == 400

    def test_failed_job_reports_type_and_traceback(self, cache,
                                                   make_service,
                                                   monkeypatch):
        def boom(self):
            raise RuntimeError("injected simulator failure")
        monkeypatch.setattr(McmGpuSimulator, "run", boom)
        server, _ = make_service()
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": [gemv_point()]})
        job = poll_job(server.base_url, json.loads(body)["id"])
        assert job["state"] == "failed"
        assert job["error_type"] == "RuntimeError"
        assert "injected simulator failure" in job["error"]
        assert "RuntimeError" in job["traceback"]
        assert len(job["traceback"]) <= 2100
        # The summary listing carries the type but not the traceback.
        _, _, body = request(server.base_url, "GET", "/jobs")
        summary = json.loads(body)["jobs"][0]
        assert summary["error_type"] == "RuntimeError"
        assert "traceback" not in summary

    def test_sweeps_catalog_routes(self, cache, make_service):
        server, _ = make_service()
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": [gemv_point()]})
        job = poll_job(server.base_url, json.loads(body)["id"])
        digest = job["result"]["points"][0]["digest"]

        status, _, body = request(server.base_url, "GET", "/sweeps")
        assert status == 200
        index = json.loads(body)
        assert index["count"] == 1
        assert index["points"][0]["digest"] == digest
        assert index["points"][0]["scheme"] == "baseline"
        assert index["points"][0]["app"] == "gemv"
        assert index["sim_versions"] == [runner_mod.SIM_VERSION]

        status, _, body = request(server.base_url, "GET",
                                  f"/sweeps/{digest}")
        assert status == 200
        detail = json.loads(body)
        assert detail["payload"]["app"] == "gemv"
        assert detail["latency"]["p50"] <= detail["latency"]["p99"]

        status, _, _ = request(server.base_url, "GET", f"/sweeps/{'0' * 24}")
        assert status == 404

    def test_job_event_log_is_persisted_jsonl(self, cache, make_service):
        from repro.obs.eventlog import read_events
        server, _ = make_service()
        _, _, body = request(server.base_url, "POST", "/jobs",
                             {"points": [gemv_point()]})
        job = poll_job(server.base_url, json.loads(body)["id"])
        assert job["state"] == "completed"
        log_path = cache / "meta" / "events" / f"{job['id']}.jsonl"
        assert job["event_log"] == str(log_path)
        events = read_events(log_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep_start"
        assert "point_finish" in kinds and "sweep_finish" in kinds
        assert all(e["seq"] == i for i, e in enumerate(events))
