"""Coalescing-group math tests, anchored on the paper's worked examples.

The Fig 7a setup: data 1 has 12 pages (VPNs 0x1..0xC) over 4 chiplets with
interlv_gran 3; the driver finds common local PFNs 0x75, 0x88, 0x114; the
chiplet base PFNs are 0xA000, 0xB000, 0xC000, 0xD000.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import AddressError, TranslationError
from repro.mapping import (
    DataDescriptor,
    PEC_ENTRY_BITS,
    PecBuffer,
    calculate_pending_pfn,
    merged_group_vpns,
)
from repro.memsim import PteFields

BASES = (0xA000, 0xB000, 0xC000, 0xD000)


def data1() -> DataDescriptor:
    """Fig 7a data 1 — matches Example 3's PEC buffer entry."""
    return DataDescriptor(data_id=1, pasid=0, start_vpn=0x1, end_vpn=0xC,
                          interlv_gran=3, gpu_map=(0, 1, 2, 3))


class TestExample3PecEntry:
    def test_fields(self):
        d = data1()
        assert d.start_vpn == 0x1 and d.end_vpn == 0xC
        assert d.interlv_gran == 3
        assert d.gpu_map == (0, 1, 2, 3)
        assert d.num_pages == 12

    def test_vpn_to_chiplet(self):
        d = data1()
        # 0x1-0x3 -> GPU0, 0x4-0x6 -> GPU1, 0x7-0x9 -> GPU2, 0xA-0xC -> GPU3
        assert [d.chiplet_of(v) for v in range(0x1, 0xD)] == \
            [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]

    def test_entry_is_118_bits(self):
        assert PEC_ENTRY_BITS == 118
        assert data1().encoded_bits() == 118


class TestGroupMembership:
    def test_groups_partition_data1(self):
        d = data1()
        assert d.group_vpns(0x1) == [0x1, 0x4, 0x7, 0xA]
        assert d.group_vpns(0x2) == [0x2, 0x5, 0x8, 0xB]
        assert d.group_vpns(0x3) == [0x3, 0x6, 0x9, 0xC]

    def test_every_member_sees_same_group(self):
        d = data1()
        for vpn in d.group_vpns(0x2):
            assert d.group_vpns(vpn) == [0x2, 0x5, 0x8, 0xB]

    def test_partial_group_at_data_end(self):
        # 3-page data over 4 chiplets: only 3 members (Fig 7a data 3).
        d = DataDescriptor(data_id=3, pasid=0, start_vpn=0xB1, end_vpn=0xB3,
                           interlv_gran=1, gpu_map=(0, 1, 2, 3))
        assert d.group_vpns(0xB1) == [0xB1, 0xB2, 0xB3]
        assert d.coal_bitmap_for(0xB1) == 0b0111

    def test_multi_round_groups_stay_within_round(self):
        # 24 pages, gran 3, 4 chiplets: two rounds of 12.
        d = DataDescriptor(data_id=9, pasid=0, start_vpn=0, end_vpn=23,
                           interlv_gran=3, gpu_map=(0, 1, 2, 3))
        assert d.group_vpns(0) == [0, 3, 6, 9]
        assert d.group_vpns(12) == [12, 15, 18, 21]  # second round
        assert 12 not in d.group_vpns(0)

    def test_position_rejects_foreign_vpn(self):
        with pytest.raises(TranslationError):
            data1().position(0x100)


class TestExample4PfnCalculation:
    """The paper's Example 4, end to end."""

    def setup_method(self):
        self.desc = data1()
        # PTW finished VPN 0x4 -> PFN 0xB075 (GPU1, local 0x75).
        self.fields = PteFields(present=True, global_pfn=0xB075,
                                coal_bitmap=0b1111, inter_gpu_coal_order=1)

    def test_pending_0xa_resolves_to_0xd075(self):
        pfn = calculate_pending_pfn(self.desc, 0x4, self.fields, 0xA, BASES)
        assert pfn == 0xD075

    def test_all_group_members_resolve(self):
        expect = {0x1: 0xA075, 0x7: 0xC075, 0xA: 0xD075}
        for vpn, pfn in expect.items():
            assert calculate_pending_pfn(self.desc, 0x4, self.fields,
                                         vpn, BASES) == pfn

    def test_same_vpn_returns_pte_pfn(self):
        assert calculate_pending_pfn(self.desc, 0x4, self.fields,
                                     0x4, BASES) == 0xB075

    def test_non_member_returns_none(self):
        # 0x5 is data 1 but a different coalescing group.
        assert calculate_pending_pfn(self.desc, 0x4, self.fields,
                                     0x5, BASES) is None

    def test_foreign_vpn_returns_none(self):
        assert calculate_pending_pfn(self.desc, 0x4, self.fields,
                                     0x100, BASES) is None

    def test_nonparticipant_chiplet_rejected(self):
        fields = PteFields(present=True, global_pfn=0xB075,
                           coal_bitmap=0b0011, inter_gpu_coal_order=1)
        assert calculate_pending_pfn(self.desc, 0x4, fields,
                                     0xA, BASES) is None  # GPU3 not in bitmap
        assert calculate_pending_pfn(self.desc, 0x4, fields,
                                     0x1, BASES) == 0xA075


class TestMergedGroups:
    """Section V-B formulas on a merged (2-group) coalescing group."""

    def setup_method(self):
        # Data of 12 pages starting at 0x1, gran 3; groups for intra 0 and 1
        # are merged: local PFNs 0x75 and 0x76.
        self.desc = data1()
        # PTE for VPN 0x5 = GPU1 (inter 1), intra 1, merged span 2.
        self.fields = PteFields(present=True, global_pfn=0xB076,
                                coal_bitmap=0b1111, inter_gpu_coal_order=1,
                                intra_gpu_coal_order=1, merged_groups=2,
                                extended=True)

    def test_vpn_first_formula(self):
        # VPN_first = VPN - intra - gran*inter = 0x5 - 1 - 3 = 0x1.
        members = merged_group_vpns(self.desc, 0x5, self.fields)
        assert members == [0x1, 0x2, 0x4, 0x5, 0x7, 0x8, 0xA, 0xB]

    def test_pending_pfn_formula(self):
        # 0xB = GPU3 intra 1 -> 0xD000 + 0x76; 0xA = GPU3 intra 0 -> 0xD075.
        assert calculate_pending_pfn(self.desc, 0x5, self.fields,
                                     0xB, BASES) == 0xD076
        assert calculate_pending_pfn(self.desc, 0x5, self.fields,
                                     0xA, BASES) == 0xD075
        assert calculate_pending_pfn(self.desc, 0x5, self.fields,
                                     0x1, BASES) == 0xA075

    def test_outside_merged_span_returns_none(self):
        # intra 2 (VPN 0x6) is not in the 2-merged span {0,1}.
        assert calculate_pending_pfn(self.desc, 0x5, self.fields,
                                     0x6, BASES) is None

    def test_unmerged_extended_pte_behaves_like_standard(self):
        fields = PteFields(present=True, global_pfn=0xB075,
                           coal_bitmap=0b1111, inter_gpu_coal_order=1,
                           merged_groups=1, extended=True)
        assert merged_group_vpns(self.desc, 0x4, fields) == [0x1, 0x4, 0x7, 0xA]


class TestCompactBitmap:
    """Section VI scalability: bitmap holds a sharer count, not a mask."""

    def test_count_semantics(self):
        desc = DataDescriptor(data_id=1, pasid=0, start_vpn=0, end_vpn=15,
                              interlv_gran=1,
                              gpu_map=tuple(range(16)))
        fields = PteFields(present=True, global_pfn=5, coal_bitmap=16,
                           inter_gpu_coal_order=0)
        bases = tuple(i * 1000 for i in range(16))
        assert calculate_pending_pfn(desc, 0, fields, 15, bases,
                                     compact=True) == 15 * 1000 + 5

    def test_count_excludes_tail(self):
        desc = DataDescriptor(data_id=1, pasid=0, start_vpn=0, end_vpn=15,
                              interlv_gran=1, gpu_map=tuple(range(16)))
        fields = PteFields(present=True, global_pfn=5, coal_bitmap=8,
                           inter_gpu_coal_order=0)
        bases = tuple(i * 1000 for i in range(16))
        assert calculate_pending_pfn(desc, 0, fields, 9, bases,
                                     compact=True) is None


class TestPecBuffer:
    def make(self, data_id, pages, pasid=0):
        return DataDescriptor(data_id=data_id, pasid=pasid, start_vpn=data_id * 1000,
                              end_vpn=data_id * 1000 + pages - 1,
                              interlv_gran=1, gpu_map=(0, 1))

    def test_lookup_by_vpn(self):
        buf = PecBuffer(capacity=5)
        buf.insert(self.make(1, 10))
        assert buf.lookup(0, 1005).data_id == 1
        assert buf.lookup(0, 2005) is None
        assert buf.lookup(9, 1005) is None  # wrong pasid

    def test_full_buffer_evicts_smallest(self):
        buf = PecBuffer(capacity=2)
        buf.insert(self.make(1, 5))
        buf.insert(self.make(2, 50))
        evicted = buf.insert(self.make(3, 20))
        assert evicted is not None and evicted.data_id == 1
        assert buf.lookup(0, 2000 + 3) is not None
        assert buf.lookup(0, 3000 + 3) is not None

    def test_smaller_newcomer_is_dropped(self):
        buf = PecBuffer(capacity=1)
        buf.insert(self.make(1, 50))
        dropped = buf.insert(self.make(2, 5))
        assert dropped is not None and dropped.data_id == 2
        assert buf.lookup(0, 1000).data_id == 1

    def test_reinsert_replaces(self):
        buf = PecBuffer(capacity=1)
        buf.insert(self.make(1, 5))
        assert buf.insert(self.make(1, 5)) is None
        assert len(buf) == 1

    def test_size_bits_matches_paper(self):
        assert PecBuffer(capacity=5).size_bits() == 590


class TestDescriptorValidation:
    def test_rejects_empty_range(self):
        with pytest.raises(AddressError):
            DataDescriptor(data_id=1, pasid=0, start_vpn=10, end_vpn=5,
                           interlv_gran=1, gpu_map=(0,))

    def test_rejects_duplicate_gpu_map(self):
        with pytest.raises(AddressError):
            DataDescriptor(data_id=1, pasid=0, start_vpn=0, end_vpn=5,
                           interlv_gran=1, gpu_map=(0, 0))

    def test_rejects_zero_gran(self):
        with pytest.raises(AddressError):
            DataDescriptor(data_id=1, pasid=0, start_vpn=0, end_vpn=5,
                           interlv_gran=0, gpu_map=(0,))


@settings(max_examples=100, deadline=None)
@given(
    gran=st.integers(min_value=1, max_value=8),
    sharers=st.integers(min_value=2, max_value=4),
    rounds=st.integers(min_value=1, max_value=3),
    pte_pick=st.integers(min_value=0, max_value=10_000),
    pending_pick=st.integers(min_value=0, max_value=10_000),
)
def test_property_calculated_pfn_matches_direct_mapping(
        gran, sharers, rounds, pte_pick, pending_pick):
    """PFN calculation must agree with the enforced mapping, for any group.

    We build the ground-truth mapping the driver would enforce (same local
    PFN per group across sharers) and check calculate_pending_pfn against it
    for arbitrary member pairs.
    """
    bases = tuple(i * 100_000 for i in range(sharers))
    pages = gran * sharers * rounds
    desc = DataDescriptor(data_id=1, pasid=0, start_vpn=50,
                          end_vpn=50 + pages - 1, interlv_gran=gran,
                          gpu_map=tuple(range(sharers)))
    # Ground truth: group (round r, intra k) gets local PFN 1000 + r*gran + k.
    def true_pfn(vpn):
        rnd, inter, intra = desc.position(vpn)
        return bases[desc.gpu_map[inter]] + 1000 + rnd * gran + intra

    vpns = list(range(desc.start_vpn, desc.end_vpn + 1))
    pte_vpn = vpns[pte_pick % len(vpns)]
    pending_vpn = vpns[pending_pick % len(vpns)]
    bitmap = 0
    for c in range(sharers):
        bitmap |= 1 << c
    _rnd, inter, _intra = desc.position(pte_vpn)
    fields = PteFields(present=True, global_pfn=true_pfn(pte_vpn),
                       coal_bitmap=bitmap, inter_gpu_coal_order=inter)
    result = calculate_pending_pfn(desc, pte_vpn, fields, pending_vpn, bases)
    if pending_vpn in desc.group_vpns(pte_vpn):
        assert result == true_pfn(pending_vpn)
    else:
        assert result is None
