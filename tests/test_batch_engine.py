"""Cross-engine differential suite: the batch engine vs the event engine.

Three rings of evidence, inside out:

* **component equality** — the vectorized TLB and the bulk cuckoo view
  replay their scalar counterparts operation for operation (same hits,
  same LRU victims, same false positives);
* **sequential degeneration** — with ``batch_size=1`` and one chiplet /
  one stream / window 1, the stage pipeline degenerates to the event
  engine's sequential protocol, and walk counts, L2 stats, ATS requests,
  and PEC coalescing must match *exactly*;
* **oracle exactness everywhere** — on arbitrary configurations the
  engines legitimately differ in timing-attributed counters, but every
  delivered ``(pasid, vpn) -> pfn`` mapping must equal the reference
  translator's, the translated key sets must agree across engines, and
  each page's owner chiplet must be identical.

Shrunk hypothesis failures found while building the engine are pinned as
``@example`` cases so they rerun forever.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.batch import BatchSimulator, make_simulator
from repro.batch.vectlb import BulkCuckooView, VectorTlb
from repro.common.config import CuckooConfig, SimConfig, TlbConfig
from repro.common.errors import ConfigError, TranslationError
from repro.experiments import configs
from repro.filters.cuckoo import CuckooFilter
from repro.gpu import McmGpuSimulator
from repro.memsim.tlb import Tlb, TlbEntry
from repro.validation import reference_translation
from repro.validation.fuzz import fuzz_workload
from repro.workloads import DataSpec, Workload

#: The restriction under which the batch engine is provably sequential:
#: one access in flight at a time, one translation pipeline.
SEQUENTIAL = dict(num_chiplets=1, streams_per_chiplet=1, stream_window=1)

SCHEMES = ("baseline", "barre", "fbarre")


def _run_with_mappings(sim):
    """Run a simulator, returning (SimResult, {(pasid, vpn): pfn})."""
    seen: dict[tuple[int, int], int] = {}
    sim.pfn_observer = (lambda cid, sid, pasid, vpn, pfn:
                        seen.setdefault((pasid, vpn), pfn))
    return sim.run(), seen


def _batch(cfg: SimConfig, workload, **kwargs) -> BatchSimulator:
    return BatchSimulator(cfg.replace(engine="batch"), [workload],
                          trace_scale=1.0, **kwargs)


@st.composite
def small_workloads(draw) -> Workload:
    pattern = draw(st.sampled_from(
        ["stream", "blocked", "stencil", "stride", "random", "gather"]))
    pages = draw(st.integers(min_value=16, max_value=300))
    data = [DataSpec("main", pages=pages, row_pages=draw(
        st.sampled_from([0, 8])))]
    if pattern == "gather":
        data.append(DataSpec("vec", pages=draw(
            st.integers(min_value=8, max_value=100)), shared=True,
            irregular=True))
    return Workload(
        abbr="xeng", app_name="cross-engine", suite="hypothesis",
        category="mid", paper_mpki=1.0, data=tuple(data), pattern=pattern,
        weight=1.0, gap=draw(st.integers(min_value=0, max_value=8)),
        num_ctas=draw(st.sampled_from([8, 16])),
        accesses_per_cta=draw(st.integers(min_value=10, max_value=40)),
        params={"gather_data": 1, "touches_per_page": 2,
                "stride_pages": draw(st.integers(min_value=1, max_value=8)),
                "row_width": 4},
    )


def _stride_cex_workload() -> Workload:
    """The ROADMAP counterexample workload — heaviest PEC traffic known."""
    return Workload(
        abbr="xeng", app_name="cross-engine", suite="hypothesis",
        category="mid", paper_mpki=1.0,
        data=(DataSpec("main", pages=37, row_pages=0),),
        pattern="stride", weight=1.0, gap=0, num_ctas=16,
        accesses_per_cta=10,
        params={"gather_data": 1, "touches_per_page": 2,
                "stride_pages": 4, "row_width": 1},
    )


# -- ring 1: component equality ---------------------------------------------

def test_vectortlb_replays_reference_tlb_exactly():
    """Probe→commit→fill at batch size 1 == the OrderedDict Tlb protocol.

    A randomized access stream with a hot working set drives both TLBs;
    hit/miss streams, eviction counts, and final resident sets must agree
    after every operation — this is the foundation the sequential-
    degeneration equality rests on.
    """
    cfg = TlbConfig(entries=16, ways=4, lookup_latency=1, mshrs=4)
    ref, vec = Tlb(cfg, name="ref"), VectorTlb(cfg, name="vec")
    rng = np.random.default_rng(42)
    evictions = 0
    for step in range(2000):
        pasid = int(rng.integers(0, 2))
        vpn = int(rng.integers(0, 40))   # ~2.5x capacity: constant churn
        expect = ref.lookup(pasid, vpn)
        pasids = np.array([pasid], dtype=np.int64)
        vpns = np.array([vpn], dtype=np.int64)
        hit, way = vec.probe_many(pasids, vpns)
        vec.commit_hits(pasids, vpns, hit, way)
        if expect is None:
            assert not hit[0], f"step {step}: vec hit where ref missed"
            entry = TlbEntry(pasid=pasid, vpn=vpn, global_pfn=vpn * 7 + pasid)
            ref_victim = ref.insert(entry)
            vec_victim = vec.fill(TlbEntry(pasid=pasid, vpn=vpn,
                                           global_pfn=vpn * 7 + pasid))
            assert (ref_victim is None) == (vec_victim is None), f"step {step}"
            if ref_victim is not None:
                evictions += 1
                assert ref_victim.key == vec_victim.key, (
                    f"step {step}: LRU victims diverge "
                    f"{ref_victim.key} vs {vec_victim.key}")
        else:
            assert hit[0], f"step {step}: vec missed where ref hit"
            assert int(vec.gather_pfns(vpns, way)[0]) == expect.global_pfn
    assert evictions > 100, "churn too low to prove anything"
    assert ref.stats.count("hits") == vec.hits
    assert ref.stats.count("misses") == vec.misses
    assert {e.key for e in ref.entries()} == {
        e.key for e in vec._payloads.values()}


def test_bulk_cuckoo_view_matches_scalar_filter_bit_for_bit():
    """contains_many must reproduce scalar contains — including the false
    positives, which are part of F-Barre's simulated behavior."""
    cuckoo = CuckooFilter(CuckooConfig(rows=32, ways=2, fingerprint_bits=6))
    view = BulkCuckooView(cuckoo)
    rng = np.random.default_rng(7)
    live: set[int] = set()
    for _ in range(300):
        item = int(rng.integers(0, 5000))
        if item in live and rng.random() < 0.5:
            cuckoo.delete(item)
            live.discard(item)
        elif cuckoo.insert(item):
            live.add(item)
        # Both probe paths: large batches densify the buckets, small
        # candidate screens peek at them directly.
        for size in (64, 3):
            probes = rng.integers(0, 5000, size=size).astype(np.int64)
            bulk = view.contains_many(probes)
            scalar = np.array([cuckoo.contains(int(p)) for p in probes])
            assert (bulk == scalar).all(), (
                f"bulk membership (batch of {size}) diverged from scalar")


# -- ring 2: sequential degeneration ----------------------------------------

@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("seed", range(5))
def test_sequential_config_counts_equal_event_engine(scheme, seed):
    """batch_size=1 + 1 chiplet/stream/window ⇒ exact count equality."""
    workload = fuzz_workload(seed)
    cfg = getattr(configs, scheme)(seed=seed, **SEQUENTIAL)
    ev = McmGpuSimulator(cfg, [workload], trace_scale=1.0).run()
    br = _batch(cfg, workload, batch_size=1).run()
    assert br.walks == ev.walks
    assert br.l2_misses == ev.l2_misses
    assert br.l2_lookups == ev.l2_lookups
    assert br.ats_requests == ev.ats_requests
    assert br.pec_coalesced == ev.pec_coalesced


@settings(max_examples=6, deadline=None)
@given(workload=small_workloads(),
       scheme=st.sampled_from(SCHEMES),
       seed=st.integers(min_value=0, max_value=2**16))
@example(workload=_stride_cex_workload(), scheme="barre", seed=0)
def test_property_sequential_walks_equal(workload, scheme, seed):
    """Hypothesis over the sequential restriction: counts always equal.

    The stride counterexample is pinned: its dense duplicate runs and PEC
    coalescing shook out the carry-propagation bug in the duplicate-
    collapse stage during development.
    """
    cfg = getattr(configs, scheme)(seed=seed, **SEQUENTIAL)
    ev = McmGpuSimulator(cfg, [workload], trace_scale=1.0).run()
    br = _batch(cfg, workload, batch_size=1).run()
    assert (br.walks, br.l2_misses, br.ats_requests, br.pec_coalesced) == \
        (ev.walks, ev.l2_misses, ev.ats_requests, ev.pec_coalesced)


# -- ring 3: oracle exactness on arbitrary configs --------------------------

@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("seed", range(3))
def test_batch_mappings_match_oracle_and_event_engine(scheme, seed):
    """Full default geometry: every mapping oracle-exact, same key set and
    owner chiplet as the event engine."""
    workload = fuzz_workload(seed)
    cfg = getattr(configs, scheme)(seed=seed)
    ref = reference_translation(cfg, [workload])
    _, ev_seen = _run_with_mappings(
        McmGpuSimulator(cfg, [workload], trace_scale=1.0))
    br, b_seen = _run_with_mappings(_batch(cfg, workload))
    assert b_seen, "batch engine delivered no translations"
    bad = {k: pfn for k, pfn in b_seen.items()
           if ref.translations.get(k) != pfn}
    assert not bad, f"batch mappings diverge from oracle: {bad}"
    assert set(b_seen) == set(ev_seen), "translated key sets differ"
    fpc = cfg.frames_per_chiplet
    owners_differ = {k for k in b_seen
                     if b_seen[k] // fpc != ev_seen[k] // fpc}
    assert not owners_differ, (
        f"owner-chiplet decisions differ at {sorted(owners_differ)[:5]}")
    # Walk-work conservation holds inside the batch engine too.
    merges = br.extra["walk_merges"]
    assert br.walks + merges + br.pec_coalesced == br.ats_requests


@settings(max_examples=6, deadline=None)
@given(workload=small_workloads(),
       scheme=st.sampled_from(SCHEMES),
       seed=st.integers(min_value=0, max_value=2**16))
@example(workload=_stride_cex_workload(), scheme="fbarre", seed=0)
def test_property_batch_mappings_match_oracle(workload, scheme, seed):
    """Hypothesis over full geometry: oracle exactness is unconditional.

    The pinned example drives F-Barre's LCF/PEC calculation path through
    the stride counterexample's coalescing-heavy stream — the case that
    exposed a stale sibling-probe during development (the bulk LCF screen
    must confirm against batch-start L2 state, not mid-wave fills).
    """
    cfg = getattr(configs, scheme)(seed=seed)
    ref = reference_translation(cfg, [workload])
    _, seen = _run_with_mappings(_batch(cfg, workload))
    assert seen
    assert all(ref.translations.get(k) == pfn for k, pfn in seen.items())


@pytest.mark.parametrize("batch_size", [1, 7, 64, 1024])
def test_batch_size_never_changes_mappings(batch_size):
    """Mappings and conservation are batch-size invariant (timing-attributed
    counters like merges/PEC legitimately shift with the wave width)."""
    workload = fuzz_workload(3)
    cfg = configs.fbarre(seed=3)
    ref = reference_translation(cfg, [workload])
    br, seen = _run_with_mappings(
        _batch(cfg, workload, batch_size=batch_size))
    assert seen
    assert all(ref.translations.get(k) == pfn for k, pfn in seen.items())
    assert (br.walks + br.extra["walk_merges"] + br.pec_coalesced
            == br.ats_requests)


# -- scatter/gather boundary edge cases -------------------------------------

def test_empty_batch_wave_is_a_noop():
    """A wave whose slice is beyond every stream is pure no-op."""
    sim = _batch(configs.baseline(seed=0), fuzz_workload(0))
    sim.run()
    before = (sim.walks, sim.ats_requests, sim.pec_coalesced,
              sim.local_accesses, sim.remote_accesses,
              [s.l2.hits + s.l2.misses for s in sim.chiplets])
    sim._run_wave(10 ** 9, 10 ** 9 + 64)
    after = (sim.walks, sim.ats_requests, sim.pec_coalesced,
             sim.local_accesses, sim.remote_accesses,
             [s.l2.hits + s.l2.misses for s in sim.chiplets])
    assert before == after


def test_single_access_batch():
    workload = Workload(
        abbr="one", app_name="single", suite="edge", category="mid",
        paper_mpki=1.0, data=(DataSpec("main", pages=4, row_pages=0),),
        pattern="stream", weight=1.0, gap=0, num_ctas=1,
        accesses_per_cta=1, params={},
    )
    cfg = configs.baseline(seed=0, **SEQUENTIAL)
    ref = reference_translation(cfg, [workload])
    result, seen = _run_with_mappings(_batch(cfg, workload, batch_size=1))
    assert len(seen) == 1
    ((key, pfn),) = seen.items()
    assert ref.translations[key] == pfn
    assert result.walks == 1 and result.l2_misses == 1
    assert result.cycles > 0


def test_all_misses_batch_walks_every_distinct_key():
    """Cold TLBs + one giant wave: every chiplet-unique key walks (or
    merges/coalesces), nothing hits, and all fills land correctly."""
    workload = fuzz_workload(1)
    cfg = configs.baseline(seed=1, num_chiplets=1)
    ref = reference_translation(cfg, [workload])
    sim = _batch(cfg, workload, batch_size=1 << 20)   # everything in wave 1
    result, seen = _run_with_mappings(sim)
    assert all(ref.translations.get(k) == pfn for k, pfn in seen.items())
    # One chiplet, one wave: every distinct key is a primary walk or an
    # in-wave merge; nothing can hit a cold TLB.
    assert result.walks == len(seen)
    assert result.walks + result.extra["walk_merges"] == result.ats_requests


def test_invalidation_at_the_drain_boundary_forces_a_rewalk():
    """invalidate() between waves drops L1/L2 state *and* the duplicate-
    collapse carry, so the next wave re-misses and re-walks — and still
    delivers oracle-exact PFNs."""
    workload = _stride_cex_workload()   # gap=0: dup runs cross waves
    cfg = configs.baseline(seed=0, **SEQUENTIAL)
    ref = reference_translation(cfg, [workload])

    undisturbed = _batch(cfg, workload, batch_size=32)
    base_result = undisturbed.run()

    sim = _batch(cfg, workload, batch_size=32)
    seen: dict[tuple[int, int], int] = {}
    wrong: list = []

    def observer(_cid, _sid, pasid, vpn, pfn):
        seen[(pasid, vpn)] = pfn
        if ref.translations.get((pasid, vpn)) != pfn:
            wrong.append((pasid, vpn, pfn))

    sim.pfn_observer = observer
    chunk = sim._chunks[0]
    total = len(chunk["vpn"])
    assert total > 64, "workload too small to span multiple waves"
    sim._run_wave(0, 32)
    # Invalidate the carry key (the last access of wave 0) plus another
    # resident key — the carry path is the one a naive flush would miss.
    carry_key = (int(chunk["pasid"][31]), int(chunk["vpn"][31]))
    other_key = (int(chunk["pasid"][0]), int(chunk["vpn"][0]))
    for pasid, vpn in {carry_key, other_key}:
        sim.invalidate(pasid, vpn)
    assert sim.chiplets[0].carry[0] is None, "carry survived invalidation"
    for lo in range(32, total, 32):
        sim._run_wave(lo, lo + 32)
    assert not wrong, f"post-invalidation PFNs diverged: {wrong[:5]}"
    assert set(seen) == set(ref.translations)
    assert sim.walks > base_result.walks, (
        "invalidation did not force a re-walk")


def test_regression_wave_local_gather_survives_l2_churn():
    """gups (random access, huge footprint) at full geometry: a wave's own
    residue fills can evict an earlier L2 hit *within the same wave*; the
    merge-gather path must read the wave's resolved PFNs, not post-fill
    TLB state.  This crashed with an AttributeError before the fix."""
    from repro.workloads.suite import get_workload
    cfg = configs.baseline()
    workload = get_workload("gups")
    ref = reference_translation(cfg, [workload], trace_scale=0.2)
    sim = BatchSimulator(cfg.replace(engine="batch"), [workload],
                         trace_scale=0.2)
    seen: dict[tuple[int, int], int] = {}
    sim.pfn_observer = (lambda cid, sid, pasid, vpn, pfn:
                        seen.setdefault((pasid, vpn), pfn))
    sim.run()
    assert len(seen) > 1000, "workload footprint too small to churn the L2"
    assert all(ref.translations.get(k) == pfn for k, pfn in seen.items())


def test_unknown_pasid_raises_typed_translation_error():
    sim = _batch(configs.baseline(seed=0), fuzz_workload(0))
    with pytest.raises(TranslationError, match="PASID 777"):
        sim._iommu_stage([(0, 777, 0x123)], {})


def test_verify_translations_has_teeth():
    """verify_translations passes clean and catches an injected PEC bug."""
    workload = _stride_cex_workload()
    cfg = configs.barre(seed=0)
    _batch(cfg, workload, verify_translations=True).run()   # clean
    sim = _batch(cfg, workload, verify_translations=True)
    sim.pec.inject_pfn_offset = 7
    with pytest.raises(TranslationError, match="wrong batch translation"):
        sim.run()


# -- configuration gates -----------------------------------------------------

@pytest.mark.parametrize("cfg_factory", [
    lambda: configs.with_migration(configs.fbarre()),
    lambda: configs.baseline(demand_paging=True),
    lambda: configs.mgvm(),
    lambda: configs.with_iommu_tlb(configs.baseline()),
    lambda: configs.fbarre(oracle_sharing=True),
    lambda: configs.valkyrie(),
    lambda: configs.least(),
    lambda: configs.shared_l2(),
], ids=["migration", "demand-paging", "gmmu", "iommu-tlb",
        "oracle-sharing", "valkyrie", "least", "shared-l2"])
def test_unsupported_configs_drain_to_the_event_engine(cfg_factory):
    cfg = cfg_factory().replace(engine="batch")
    with pytest.raises(ConfigError, match="event engine"):
        BatchSimulator(cfg, [fuzz_workload(0)])


def test_make_simulator_routes_on_the_engine_knob():
    wl = fuzz_workload(0)
    assert isinstance(make_simulator(configs.baseline(), [wl]),
                      McmGpuSimulator)
    assert isinstance(
        make_simulator(configs.baseline().replace(engine="batch"), [wl]),
        BatchSimulator)
    with pytest.raises(ConfigError, match="tracer"):
        make_simulator(configs.baseline().replace(engine="batch"), [wl],
                       trace=True)
    with pytest.raises(ConfigError, match="invariant"):
        make_simulator(configs.baseline().replace(engine="batch"), [wl],
                       check_invariants=True)


def test_unknown_engine_name_is_rejected_at_config_time():
    with pytest.raises(ConfigError, match="unknown engine"):
        SimConfig(engine="vector")


# -- nightly deep profiles ---------------------------------------------------

@pytest.mark.slow
@settings(max_examples=100, deadline=None)
@given(workload=small_workloads(),
       scheme=st.sampled_from(SCHEMES),
       seed=st.integers(min_value=0, max_value=2**16))
def test_deep_sequential_counts_equal(workload, scheme, seed):
    cfg = getattr(configs, scheme)(seed=seed, **SEQUENTIAL)
    ev = McmGpuSimulator(cfg, [workload], trace_scale=1.0).run()
    br = _batch(cfg, workload, batch_size=1).run()
    assert (br.walks, br.l2_misses, br.l2_lookups, br.ats_requests,
            br.pec_coalesced) == (ev.walks, ev.l2_misses, ev.l2_lookups,
                                  ev.ats_requests, ev.pec_coalesced)


@pytest.mark.slow
@settings(max_examples=100, deadline=None)
@given(workload=small_workloads(),
       scheme=st.sampled_from(SCHEMES),
       batch_size=st.sampled_from([1, 16, 256, 1024]),
       seed=st.integers(min_value=0, max_value=2**16))
def test_deep_batch_mappings_match_oracle(workload, scheme, batch_size,
                                          seed):
    cfg = getattr(configs, scheme)(seed=seed)
    ref = reference_translation(cfg, [workload])
    br, seen = _run_with_mappings(
        _batch(cfg, workload, batch_size=batch_size))
    assert seen
    assert all(ref.translations.get(k) == pfn for k, pfn in seen.items())
    assert (br.walks + br.extra["walk_merges"] + br.pec_coalesced
            == br.ats_requests)
