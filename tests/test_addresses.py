"""Unit tests for address arithmetic."""

import pytest

from repro.common import (
    AddressError,
    GlobalPfn,
    MAX_VPN,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    check_vpn,
    pages_for_bytes,
    split_global_pfn,
    vpn_of,
)


def test_check_vpn_accepts_bounds():
    assert check_vpn(0) == 0
    assert check_vpn(MAX_VPN) == MAX_VPN


@pytest.mark.parametrize("bad", [-1, MAX_VPN + 1])
def test_check_vpn_rejects_out_of_range(bad):
    with pytest.raises(AddressError):
        check_vpn(bad)


def test_pages_for_bytes_rounds_up():
    assert pages_for_bytes(0) == 0
    assert pages_for_bytes(1) == 1
    assert pages_for_bytes(PAGE_SIZE_4K) == 1
    assert pages_for_bytes(PAGE_SIZE_4K + 1) == 2
    assert pages_for_bytes(10 * PAGE_SIZE_2M, PAGE_SIZE_2M) == 10


def test_pages_for_bytes_rejects_bad_input():
    with pytest.raises(AddressError):
        pages_for_bytes(-1)
    with pytest.raises(AddressError):
        pages_for_bytes(100, page_size=1234)


def test_vpn_of_page_sizes():
    assert vpn_of(0) == 0
    assert vpn_of(PAGE_SIZE_4K) == 1
    assert vpn_of(PAGE_SIZE_2M - 1, PAGE_SIZE_2M) == 0
    with pytest.raises(AddressError):
        vpn_of(-5)


def test_global_pfn_roundtrip():
    bases = (0, 1000, 2000, 3000)
    g = GlobalPfn(chiplet=2, local_pfn=17)
    flat = g.to_global(bases)
    assert flat == 2017
    assert split_global_pfn(flat, bases, frames_per_chiplet=1000) == g


def test_split_global_pfn_rejects_gaps():
    bases = (0, 1000)
    with pytest.raises(AddressError):
        split_global_pfn(5000, bases, frames_per_chiplet=1000)


def test_global_pfn_rejects_unknown_chiplet():
    with pytest.raises(AddressError):
        GlobalPfn(chiplet=9, local_pfn=0).to_global((0, 100))
