"""Trace export/import round-trip tests."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.workloads import get_workload
from repro.workloads.io import load_ctas, save_ctas


def test_round_trip_preserves_traces(tmp_path):
    w = get_workload("st2d")
    ctas = w.build_ctas(np.random.default_rng(5), scale=0.1)
    path = tmp_path / "st2d.npz"
    save_ctas(path, w, ctas)
    loaded = load_ctas(path, expected_abbr="st2d")
    assert len(loaded) == len(ctas)
    for a, b in zip(ctas, loaded):
        assert a.cta_id == b.cta_id and a.pasid == b.pasid
        assert (a.data_index == b.data_index).all()
        assert (a.page_offset == b.page_offset).all()


def test_abbr_mismatch_rejected(tmp_path):
    w = get_workload("gemv")
    ctas = w.build_ctas(np.random.default_rng(1), scale=0.05)
    path = tmp_path / "t.npz"
    save_ctas(path, w, ctas)
    with pytest.raises(ConfigError):
        load_ctas(path, expected_abbr="spmv")


def test_empty_trace_rejected(tmp_path):
    with pytest.raises(ConfigError):
        save_ctas(tmp_path / "x.npz", get_workload("gemv"), [])


def test_variable_length_ctas_survive(tmp_path):
    w = get_workload("pr")
    ctas = w.build_ctas(np.random.default_rng(2), scale=0.05)
    # Truncate one CTA to force unequal lengths.
    import dataclasses
    ctas[3] = dataclasses.replace(ctas[3],
                                  data_index=ctas[3].data_index[:5],
                                  page_offset=ctas[3].page_offset[:5])
    path = tmp_path / "pr.npz"
    save_ctas(path, w, ctas)
    loaded = load_ctas(path)
    assert len(loaded[3]) == 5
    assert (loaded[4].page_offset == ctas[4].page_offset).all()
