"""PEC logic tests: candidates, calculation wrapper, field synthesis."""

import pytest

from repro.common import MappingKind, MemoryMap
from repro.iommu import PecLogic
from repro.mapping import (
    AllocationRequest,
    FrameAllocatorGroup,
    GpuDriver,
    PecBuffer,
    make_policy,
)
from repro.memsim import AddressSpaceRegistry


def make_setup(merge=1, pages=12, row_pages=3):
    mm = MemoryMap(num_chiplets=4, frames_per_chiplet=4096)
    allocators = FrameAllocatorGroup(4, 4096)
    spaces = AddressSpaceRegistry()
    driver = GpuDriver(mm, allocators, spaces,
                       make_policy(MappingKind.LASP, 4),
                       barre_enabled=True, merge_max=merge)
    rec = driver.malloc(AllocationRequest(data_id=1, pages=pages,
                                          row_pages=row_pages))
    pec = PecLogic(driver.pec_buffer, mm.chiplet_bases)
    return driver, spaces, rec, pec


def test_calculate_uses_descriptor_and_formula():
    driver, spaces, rec, pec = make_setup()
    table = spaces.get(0)
    pte_vpn = rec.start_vpn
    fields = table.walk(pte_vpn)
    for sibling in rec.descriptor.group_vpns(pte_vpn):
        assert pec.calculate(0, pte_vpn, fields, sibling) == \
            table.walk(sibling).global_pfn
    assert pec.stats.count("calculations") == 4


def test_calculate_rejects_uncoalesced_fields():
    driver, spaces, rec, pec = make_setup(pages=1)
    table = spaces.get(0)
    fields = table.walk(rec.start_vpn)
    assert pec.calculate(0, rec.start_vpn, fields, rec.start_vpn + 1) is None


def test_calculate_counts_descriptor_misses():
    driver, spaces, rec, pec = make_setup()
    fields = spaces.get(0).walk(rec.start_vpn)
    empty = PecLogic(PecBuffer(5), (0, 4096, 8192, 12288))
    assert empty.calculate(0, rec.start_vpn, fields,
                           rec.start_vpn + 3) is None
    assert empty.stats.count("descriptor_misses") == 1


def test_sibling_vpns_cover_group():
    driver, spaces, rec, pec = make_setup()
    fields = spaces.get(0).walk(rec.start_vpn)
    sibs = pec.sibling_vpns(0, rec.start_vpn, fields)
    assert sibs == rec.descriptor.group_vpns(rec.start_vpn)


def test_candidate_vpns_standard():
    driver, spaces, rec, pec = make_setup()
    # Candidates for a VPN are its whole group (inter positions x 1 intra).
    candidates = pec.candidate_vpns(0, rec.start_vpn + 4, max_merge=1)
    assert set(rec.descriptor.group_vpns(rec.start_vpn + 4)) <= set(candidates)


def test_candidate_vpns_with_merge_window():
    driver, spaces, rec, pec = make_setup(merge=2, pages=16, row_pages=4)
    vpn = rec.start_vpn + 1  # intra 1
    narrow = set(pec.candidate_vpns(0, vpn, max_merge=1))
    wide = set(pec.candidate_vpns(0, vpn, max_merge=2))
    assert narrow < wide  # merge window adds intra neighbours


def test_candidate_vpns_without_descriptor_is_empty():
    pec = PecLogic(PecBuffer(5), (0, 1, 2, 3))
    assert pec.candidate_vpns(0, 1234) == []


def test_synthesize_fields_matches_real_ptes():
    driver, spaces, rec, pec = make_setup()
    table = spaces.get(0)
    pte_vpn = rec.start_vpn + 3
    fields = table.walk(pte_vpn)
    for pending in rec.descriptor.group_vpns(pte_vpn):
        synthesized = pec.synthesize_fields(0, pending, pte_vpn, fields)
        actual = table.walk(pending)
        assert synthesized.global_pfn == actual.global_pfn
        assert synthesized.coal_bitmap == actual.coal_bitmap
        assert synthesized.inter_gpu_coal_order == actual.inter_gpu_coal_order


def test_synthesize_fields_merged_layout():
    driver, spaces, rec, pec = make_setup(merge=2, pages=16, row_pages=4)
    table = spaces.get(0)
    pte_vpn = rec.start_vpn  # intra 0, merged pair
    fields = table.walk(pte_vpn)
    assert fields.merged_groups == 2
    pending = rec.start_vpn + 1
    synthesized = pec.synthesize_fields(0, pending, pte_vpn, fields)
    actual = table.walk(pending)
    assert synthesized == actual


def test_synthesize_fields_rejects_non_members():
    driver, spaces, rec, pec = make_setup()
    fields = spaces.get(0).walk(rec.start_vpn)
    assert pec.synthesize_fields(0, rec.start_vpn + 1, rec.start_vpn,
                                 fields) is None
    assert pec.synthesize_fields(0, 999_999, rec.start_vpn, fields) is None
