"""F-Barre agent tests: filters, intra-MCM translation, peer serving."""

import pytest

from repro.common import CuckooConfig, MemoryMap, MappingKind, TlbConfig
from repro.core import CoalescingAgent, FilterUpdate
from repro.iommu import PecLogic
from repro.mapping import (
    AllocationRequest,
    FrameAllocatorGroup,
    GpuDriver,
    PecBuffer,
    make_policy,
)
from repro.memsim import AddressSpaceRegistry, Tlb, TlbEntry


class Harness:
    """Two chiplets with Barre-mapped data, wired agents, captured updates."""

    def __init__(self, num_chiplets=4, merge=1):
        self.mm = MemoryMap(num_chiplets=num_chiplets, frames_per_chiplet=4096)
        self.allocators = FrameAllocatorGroup(num_chiplets, 4096)
        self.spaces = AddressSpaceRegistry()
        self.driver = GpuDriver(self.mm, self.allocators, self.spaces,
                                make_policy(MappingKind.LASP, num_chiplets),
                                barre_enabled=True, merge_max=merge)
        self.sent: list[tuple[int, int, FilterUpdate]] = []
        self.agents: list[CoalescingAgent] = []
        self.l2s: list[Tlb] = []
        cuckoo = CuckooConfig(rows=256)
        for cid in range(num_chiplets):
            l2 = Tlb(TlbConfig(entries=512, ways=16, lookup_latency=10,
                               mshrs=16), name=f"l2.{cid}")
            pec = PecLogic(PecBuffer(5), self.mm.chiplet_bases)
            agent = CoalescingAgent(
                cid, num_chiplets, cuckoo, pec, l2, max_merge=merge,
                send_update=self._sender(cid))
            self.agents.append(agent)
            self.l2s.append(l2)

    def _sender(self, src):
        def send(peer, update):
            self.sent.append((src, peer, update))
            self.agents[peer].apply_update(update)
        return send

    def alloc(self, pages, row_pages=1, data_id=1):
        return self.driver.malloc(AllocationRequest(
            data_id=data_id, pages=pages, row_pages=row_pages))

    def entry_for(self, vpn, desc):
        fields = self.spaces.get(0).walk(vpn)
        return TlbEntry(pasid=0, vpn=vpn, global_pfn=fields.global_pfn,
                        coal=fields if fields.is_coalesced else None,
                        pec=desc)


def test_insert_updates_lcf_and_peer_rcfs():
    h = Harness()
    rec = h.alloc(pages=4)
    entry = h.entry_for(rec.start_vpn, rec.descriptor)
    h.l2s[0].insert(entry)
    agent0 = h.agents[0]
    assert agent0.lcf.contains(rec.start_vpn)
    # Peers' RCF_0 must contain the exact VPN and every sibling VPN.
    for peer in (1, 2, 3):
        for sibling in range(rec.start_vpn, rec.start_vpn + 4):
            assert h.agents[peer].rcfs[0].contains(sibling)


def test_evict_removes_filter_state():
    h = Harness()
    rec = h.alloc(pages=4)
    entry = h.entry_for(rec.start_vpn, rec.descriptor)
    h.l2s[0].insert(entry)
    h.l2s[0].invalidate(0, rec.start_vpn)
    assert not h.agents[0].lcf.contains(rec.start_vpn)
    for peer in (1, 2, 3):
        for sibling in range(rec.start_vpn, rec.start_vpn + 4):
            assert not h.agents[peer].rcfs[0].contains(sibling)


def test_try_local_calculates_from_sibling():
    """Fig 12 steps 3-7 on one chiplet: LCF hit -> TLB probe -> PEC calc."""
    h = Harness()
    rec = h.alloc(pages=8, row_pages=2)  # gran 2: groups {0,2,4,6}, {1,3,5,7}
    desc = rec.descriptor
    # Chiplet 1 holds the translation for its own member (start+2).
    member = rec.start_vpn + 2
    h.l2s[1].insert(h.entry_for(member, desc))
    # Chiplet 1 now needs start+4 (same group, chiplet 2's page).
    entry = h.agents[1].try_local(0, rec.start_vpn + 4)
    assert entry is not None
    table = h.spaces.get(0)
    assert entry.global_pfn == table.walk(rec.start_vpn + 4).global_pfn
    assert h.agents[1].stats.count("local_coalesced") == 1


def test_try_local_requires_descriptor():
    h = Harness()
    rec = h.alloc(pages=8, row_pages=2)
    member = rec.start_vpn + 2
    h.l2s[1].insert(h.entry_for(member, None))  # no descriptor piggybacked
    # Without a PEC entry the agent cannot generate candidates.
    assert h.agents[1].pec.pec_buffer.lookup(0, member) is None
    assert h.agents[1].try_local(0, rec.start_vpn + 4) is None


def test_predict_sharer_finds_peer():
    h = Harness()
    rec = h.alloc(pages=4)
    h.l2s[0].insert(h.entry_for(rec.start_vpn, rec.descriptor))
    # Chiplet 3 wants start+3; RCF_0 was updated with all siblings.
    assert h.agents[3].predict_sharer(0, rec.start_vpn + 3) == 0


def test_handle_peer_request_serves_exact_and_calculated():
    h = Harness()
    rec = h.alloc(pages=4)
    vpn0 = rec.start_vpn
    h.l2s[0].insert(h.entry_for(vpn0, rec.descriptor))
    exact = h.agents[0].handle_peer_request(0, vpn0)
    assert exact is not None and exact.global_pfn == \
        h.spaces.get(0).walk(vpn0).global_pfn
    calc = h.agents[0].handle_peer_request(0, vpn0 + 2)
    assert calc is not None
    assert calc.global_pfn == h.spaces.get(0).walk(vpn0 + 2).global_pfn


def test_peer_request_miss_returns_none():
    h = Harness()
    rec = h.alloc(pages=4)
    assert h.agents[0].handle_peer_request(0, rec.start_vpn) is None


def test_calculated_entry_can_itself_serve_later_requests():
    """Synthesized coalescing fields keep the calculation chain alive."""
    h = Harness()
    rec = h.alloc(pages=4)
    vpn0 = rec.start_vpn
    h.l2s[1].insert(h.entry_for(vpn0 + 1, rec.descriptor))
    first = h.agents[1].try_local(0, vpn0 + 2)
    assert first is not None
    h.l2s[1].insert(first)
    h.l2s[1].invalidate(0, vpn0 + 1)  # drop the original entry
    second = h.agents[1].try_local(0, vpn0 + 3)
    assert second is not None
    assert second.global_pfn == h.spaces.get(0).walk(vpn0 + 3).global_pfn


def test_merged_groups_calculate_across_intra_offsets():
    h = Harness(merge=2)
    rec = h.alloc(pages=16, row_pages=4)
    table = h.spaces.get(0)
    vpn0 = rec.start_vpn
    assert table.walk(vpn0).merged_groups == 2
    h.l2s[0].insert(h.entry_for(vpn0, rec.descriptor))
    # start+1 is the same merged group (intra offset 1) on the same chiplet.
    entry = h.agents[0].try_local(0, vpn0 + 1)
    assert entry is not None
    assert entry.global_pfn == table.walk(vpn0 + 1).global_pfn


def test_shootdown_clears_all_filters():
    h = Harness()
    rec = h.alloc(pages=4)
    h.l2s[0].insert(h.entry_for(rec.start_vpn, rec.descriptor))
    for agent in h.agents:
        agent.shootdown()
    assert not h.agents[0].lcf.contains(rec.start_vpn)
    assert h.agents[3].predict_sharer(0, rec.start_vpn + 3) is None


def test_update_messages_count_matches_siblings_and_peers():
    h = Harness()
    rec = h.alloc(pages=4)  # 4 siblings
    h.l2s[0].insert(h.entry_for(rec.start_vpn, rec.descriptor))
    # One batch per peer, each carrying all 4 sibling VPNs = 12 messages.
    adds = [u for _s, _p, u in h.sent if u.command == "add"]
    assert len(adds) == 3
    assert sum(len(u) for u in adds) == 12


def test_uncoalesced_entry_updates_exact_vpn_only():
    h = Harness()
    rec = h.alloc(pages=1)  # single page: no coalescing
    h.l2s[0].insert(h.entry_for(rec.start_vpn, None))
    adds = [u for _s, _p, u in h.sent if u.command == "add"]
    assert len(adds) == 3  # one batch per peer
    assert all(u.vpns == (rec.start_vpn,) for u in adds)
